// Package service implements fadingd, the streaming channel-simulation
// server: clients POST a channel spec (the shared chanspec correlation-model
// vocabulary plus real-time generation parameters), receive a session ID,
// and stream blocks of correlated Rayleigh fading envelopes as NDJSON or
// compact binary frames. Streams are deterministic and resumable — block k
// of a session is a pure function of the spec, so ?from=k resumption and
// any worker count reproduce the exact bytes of a from-0 stream — and a
// bounded worker pool shards block generation across sessions so one slow
// consumer never stalls the generators. See docs/service.md for the wire
// protocol.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/chanspec"
)

// ErrBadSpec reports an invalid session specification (the shared chanspec
// sentinel, so model errors match the same errors.Is target).
var ErrBadSpec = chanspec.ErrBadSpec

// Limits bounds the per-session resources a spec may request; the zero value
// of any field selects its default. They exist so one client cannot park an
// arbitrarily large generator in the session table.
type Limits struct {
	// MaxEnvelopes bounds the model's N. Default 64.
	MaxEnvelopes int
	// MaxBlocks bounds a session's total block count. Default 1 << 20.
	MaxBlocks int
	// MaxIDFTPoints bounds the per-block sample count M. Default 1 << 16.
	MaxIDFTPoints int
}

func (l Limits) withDefaults() Limits {
	if l.MaxEnvelopes == 0 {
		l.MaxEnvelopes = 64
	}
	if l.MaxBlocks == 0 {
		l.MaxBlocks = 1 << 20
	}
	if l.MaxIDFTPoints == 0 {
		l.MaxIDFTPoints = 1 << 16
	}
	return l
}

// SessionSpec is the body of POST /v1/sessions: one channel realization.
// The correlation model is the same vocabulary scenario files use
// (eq22/identity/explicit/exponential/constant/spectral/spatial, see
// internal/chanspec), so a channel calibrated in scenarios/ can be served
// verbatim.
//
// Every exported field that shapes the generated stream must be folded into
// setupKey (the setup-cache content address); the canonfields analyzer
// enforces this, so adding a spec field without hashing it fails the lint
// run instead of aliasing distinct channels in the cache.
//
// fadinglint:canon=setupKey
type SessionSpec struct {
	// Model selects and parameterizes the correlation model.
	Model chanspec.Model `json:"model"`
	// Method selects the generation backend realizing the model's covariance
	// ("generalized" default, or one of the conventional methods — see
	// docs/methods.md). A method that rejects the model's covariance fails
	// session creation with its documented error class.
	Method string `json:"method,omitempty"`
	// Seed fixes the session's random streams: equal specs produce
	// byte-identical streams, on any server, at any worker count.
	Seed int64 `json:"seed"`
	// Blocks is the total length of the session's stream in blocks.
	//lint:allow canonfields Blocks bounds the served range, not the stream; sessions of different lengths share one setup artifact
	Blocks int `json:"blocks"`
	// IDFTPoints is the block length M in samples; zero selects the paper's
	// 4096. Powers of two keep the per-block hot path allocation-free.
	IDFTPoints int `json:"idft_points,omitempty"`
	// NormalizedDoppler is fm = Fm/Fs in (0, 0.5); zero selects the paper's
	// 0.05.
	NormalizedDoppler float64 `json:"normalized_doppler,omitempty"`
	// InputVariance is σ²_orig of the Doppler filter input; zero selects the
	// paper's 1/2.
	InputVariance float64 `json:"input_variance,omitempty"`
}

// ParseSpec decodes one session spec. Decoding is strict, matching the
// scenario loader: unknown fields are rejected so a typo fails loudly
// instead of silently selecting a default channel.
func ParseSpec(r io.Reader) (*SessionSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s SessionSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("service: %w: %w", ErrBadSpec, err)
	}
	// A second document in the body is almost certainly a client bug.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("service: trailing data after spec: %w", ErrBadSpec)
	}
	return &s, nil
}

// Validate checks the spec against the limits without building a generator.
func (s *SessionSpec) Validate(limits Limits) error {
	limits = limits.withDefaults()
	if err := s.Model.Validate(); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if err := chanspec.ValidateMethod(s.Method); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if n := s.modelN(); n > limits.MaxEnvelopes {
		return fmt.Errorf("service: model has %d envelopes, limit %d: %w", n, limits.MaxEnvelopes, ErrBadSpec)
	}
	if s.Blocks <= 0 {
		return fmt.Errorf("service: session needs blocks > 0: %w", ErrBadSpec)
	}
	if s.Blocks > limits.MaxBlocks {
		return fmt.Errorf("service: %d blocks exceeds limit %d: %w", s.Blocks, limits.MaxBlocks, ErrBadSpec)
	}
	if m := s.blockLength(); m > limits.MaxIDFTPoints {
		return fmt.Errorf("service: %d IDFT points exceeds limit %d: %w", m, limits.MaxIDFTPoints, ErrBadSpec)
	}
	if fm := s.NormalizedDoppler; fm != 0 && (fm <= 0 || fm >= 0.5) {
		return fmt.Errorf("service: normalized Doppler %g outside (0, 0.5): %w", fm, ErrBadSpec)
	}
	if chanspec.NormalizeFading(s.Model.Fading) == chanspec.FadingNonstationaryDoppler && s.NormalizedDoppler != 0 {
		return fmt.Errorf("service: fading %q carries per-segment Doppler; normalized_doppler must be omitted: %w",
			s.Model.Fading, ErrBadSpec)
	}
	return nil
}

// modelN returns the envelope count the model describes.
func (s *SessionSpec) modelN() int {
	if s.Model.Type == chanspec.ModelEq22 {
		return 3
	}
	if s.Model.Type == chanspec.ModelExplicit {
		return len(s.Model.Covariance)
	}
	return s.Model.N
}

// blockLength returns the block length in effect (default 4096).
func (s *SessionSpec) blockLength() int {
	if s.IDFTPoints != 0 {
		return s.IDFTPoints
	}
	return 4096
}

// doppler returns the normalized Doppler in effect (default the paper's
// 0.05, matching the scenario engine). The nonstationary-Doppler fading model
// carries per-segment values instead, so its filter Doppler stays zero.
func (s *SessionSpec) doppler() float64 {
	if chanspec.NormalizeFading(s.Model.Fading) == chanspec.FadingNonstationaryDoppler {
		return 0
	}
	if s.NormalizedDoppler != 0 {
		return s.NormalizedDoppler
	}
	return 0.05
}

// setupKey returns the spec's content address: a hash over every field that
// determines the session's generation state (model, method, seed, block
// length, Doppler, input variance — with defaults resolved, so an omitted
// field and its explicit default collide on purpose). Blocks is deliberately
// excluded: it only bounds the served range, not the stream, so sessions of
// different lengths over the same channel share one setup artifact.
func (s *SessionSpec) setupKey() string {
	h := sha256.New()
	h.Write(s.Model.Canonical())
	h.Write([]byte{0})
	io.WriteString(h, chanspec.NormalizeMethod(s.Method))
	var tail [32]byte
	binary.LittleEndian.PutUint64(tail[0:], uint64(s.Seed))
	binary.LittleEndian.PutUint64(tail[8:], uint64(s.blockLength()))
	binary.LittleEndian.PutUint64(tail[16:], math.Float64bits(s.doppler()))
	binary.LittleEndian.PutUint64(tail[24:], math.Float64bits(s.inputVariance()))
	h.Write(tail[:])
	return hex.EncodeToString(h.Sum(nil))
}

// inputVariance returns the Doppler filter input variance in effect (default
// the paper's 1/2, matching the engine's own default).
func (s *SessionSpec) inputVariance() float64 {
	if s.InputVariance != 0 {
		return s.InputVariance
	}
	return 0.5
}

// canonical returns the spec's canonical JSON encoding (stable field order),
// used by session info responses.
func (s *SessionSpec) canonical() json.RawMessage {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	// Encoding a validated spec cannot fail.
	_ = enc.Encode(s)
	return bytes.TrimSpace(buf.Bytes())
}

// tokenSpec returns the spec as embedded in session tokens: canonical JSON
// with the Model itself canonicalized (defaults resolved, ignored parameters
// dropped), so equivalent specs mint byte-identical token payloads and every
// replica derives the same setup-cache address from them.
func (s *SessionSpec) tokenSpec() []byte {
	c := *s
	c.Model = s.Model.Canonicalize()
	return c.canonical()
}
