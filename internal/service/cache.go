package service

import (
	"fmt"
	"sync"

	rayleigh "repro"
	"repro/internal/chanspec"
)

// setupCache is the content-addressed store behind session creation. A
// session's expensive setup — covariance assembly, PSD forcing, the coloring
// root, the Doppler panel plan — lives inside its immutable *rayleigh.Stream,
// which is a pure function of the spec's setupKey. The cache shares one
// Stream across every session with the same key, so only the first create of
// a spec pays the O(N³) setup; later creates (and concurrent duplicates, via
// singleflight entries) reuse it.
//
// Eviction never invalidates: a Stream is immutable, so evicted entries stay
// valid for the sessions already holding them and are simply rebuilt on the
// next miss. The memory bound is therefore cap completed entries in the map,
// plus whatever live sessions still pin outside it.
type setupCache struct {
	cap     int
	metrics *metrics

	mu      sync.Mutex
	entries map[string]*cacheEntry
	seq     uint64 // LRU clock: bumped on every touch
}

// cacheEntry is one setup artifact, possibly still being built. ready is
// closed exactly once when stream/err are final; waiters block on it, which
// is the singleflight: concurrent creates of one spec do the setup once.
type cacheEntry struct {
	ready    chan struct{}
	stream   *rayleigh.Stream
	err      error
	lastUsed uint64
}

// newSetupCache builds a cache bounded to capacity completed entries.
// capacity < 1 disables caching entirely (every create builds).
func newSetupCache(capacity int, m *metrics) *setupCache {
	return &setupCache{
		cap:     capacity,
		metrics: m,
		entries: make(map[string]*cacheEntry),
	}
}

// buildStream performs the full uncached session setup for a validated spec.
func buildStream(spec *SessionSpec) (*rayleigh.Stream, error) {
	target, err := spec.Model.Build()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	rows := make([][]complex128, target.Rows())
	for i := range rows {
		rows[i] = target.Row(i)
	}
	return rayleigh.NewStream(rayleigh.RealTimeConfig{
		Covariance:        rows,
		IDFTPoints:        spec.blockLength(),
		NormalizedDoppler: spec.doppler(),
		InputVariance:     spec.InputVariance,
		Seed:              spec.Seed,
		Method:            spec.Method,
		Fading:            spec.Model.Fading,
		FadingParams:      publicFadingParams(spec.Model.Params),
	})
}

// publicFadingParams converts spec fading parameters to the public API form.
func publicFadingParams(p *chanspec.FadingParams) *rayleigh.FadingParams {
	if p == nil {
		return nil
	}
	out := &rayleigh.FadingParams{
		KFactor:         p.KFactor,
		LOSPhaseRad:     p.LOSPhaseRad,
		M:               p.M,
		ShadowSigmaDB:   p.ShadowSigmaDB,
		ShadowCoherence: p.ShadowCoherence,
	}
	if len(p.Segments) > 0 {
		out.Segments = make([]rayleigh.DopplerSegment, len(p.Segments))
		for i, s := range p.Segments {
			out.Segments[i] = rayleigh.DopplerSegment{Blocks: s.Blocks, NormalizedDoppler: s.NormalizedDoppler}
		}
	}
	return out
}

// stream returns the shared Stream for spec, building it on a miss. It is
// safe for concurrent use; every concurrent miss on one key performs the
// setup exactly once and shares the result (or the error, though errored
// entries are dropped so later creates retry).
func (c *setupCache) stream(spec *SessionSpec) (*rayleigh.Stream, error) {
	if c.cap < 1 {
		return buildStream(spec)
	}
	key := spec.setupKey()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.seq++
		e.lastUsed = c.seq
		c.mu.Unlock()
		<-e.ready
		// A join on a build that failed is not a hit: nothing was shared.
		if e.err == nil {
			c.metrics.specCacheHits.Add(1)
		}
		return e.stream, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.seq++
	e.lastUsed = c.seq
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()
	c.metrics.specCacheMisses.Add(1)

	e.stream, e.err = buildStream(spec)
	close(e.ready)
	if e.err != nil {
		// Failed setups are not cached: the entry satisfied concurrent
		// waiters, but the next create should retry from scratch.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.stream, e.err
}

// evictLocked drops least-recently-used completed entries until the table is
// within cap. Entries still being built are never evicted (their waiters hold
// them); the table may transiently exceed cap by the in-flight build count.
func (c *setupCache) evictLocked() {
	for len(c.entries) > c.cap {
		var victimKey string
		var victim *cacheEntry
		for k, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // in-flight
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victimKey)
	}
}

// size reports the number of cached artifacts (the /metrics gauge).
func (c *setupCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
