// 400-path coverage driven by the corpus generator's targeted invalid specs:
// every invalid body a plan can emit must be rejected by the live HTTP
// surface with 400 and the machine-readable {code, error} envelope. The test
// lives in an external package because internal/corpus imports
// internal/service.
package service_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/service"
)

// TestCorpusInvalidSpecsRejectedWith400 POSTs every corpus-generated invalid
// body and asserts the rejection contract on each: HTTP 400, a parseable
// JSON envelope, code "bad_spec", and a non-empty message. The plan's
// invalid count covers the full class cycle, so out-of-vocabulary names, the
// trajectory-vs-normalized_doppler conflict, aliased fields, range errors
// and the ErrUnsupported/ErrSetupFailed construction failures are all here.
func TestCorpusInvalidSpecsRejectedWith400(t *testing.T) {
	c, err := corpus.Generate(&corpus.Plan{Name: "svc", Seed: 3, Valid: 1, Invalid: 18})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(c.Invalid) != 18 {
		t.Fatalf("generated %d invalid specs, want 18", len(c.Invalid))
	}

	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	covered := map[string]bool{}
	for _, e := range c.Invalid {
		covered[e.Class] = true
		t.Run(e.Class, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(string(e.Data)))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			var envelope struct {
				Code  string `json:"code"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &envelope); err != nil {
				t.Fatalf("error body is not the JSON envelope: %v; body: %s", err, body)
			}
			if envelope.Code != "bad_spec" {
				t.Errorf("code %q, want \"bad_spec\"", envelope.Code)
			}
			if envelope.Error == "" {
				t.Error("error message is empty")
			}
		})
	}

	// The issue's named 400 paths must all be in the cycle — a corpus that
	// silently dropped one of these classes would hollow out this test.
	for _, class := range []string{
		"unknown-method", "unknown-fading", "trajectory-doppler-conflict",
		"aliased-field", "unsupported-ertel-n3", "setup-failed-cholesky",
	} {
		if !covered[class] {
			t.Errorf("invalid class %q not generated", class)
		}
	}
}

// TestCorpusValidSessionsAccepted is the control group: every replayable
// session spec of a small corpus must be accepted by the same surface that
// rejects the invalid ones (201, session info echoed).
func TestCorpusValidSessionsAccepted(t *testing.T) {
	c, err := corpus.Generate(&corpus.Plan{
		Name: "svcok", Seed: 4, Valid: 4,
		Axes:       corpus.Axes{Modes: []string{"realtime"}},
		Generation: corpus.GenSizes{Blocks: 4, IDFTPoints: 128},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	accepted := 0
	for _, e := range c.Valid {
		if e.Session == nil {
			continue
		}
		body, err := json.Marshal(e.Session)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Errorf("%s: status %d, want 201; body: %s", e.Name, resp.StatusCode, respBody)
			continue
		}
		accepted++
	}
	if accepted == 0 {
		t.Error("no replayable session accepted")
	}
}
