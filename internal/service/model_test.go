package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/chanspec"
)

func TestModelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Models []struct {
			Name        string `json:"name"`
			Envelope    string `json:"envelope"`
			Constraints string `json:"constraints"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Models) != 5 {
		t.Fatalf("catalog has %d models, want 5", len(out.Models))
	}
	if out.Models[0].Name != "rayleigh" || out.Models[0].Envelope == "" {
		t.Errorf("catalog head = %+v", out.Models[0])
	}
}

func TestSessionFadingThreadsThroughService(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Window: 2})

	// Default fading reads back normalized.
	info := createSession(t, ts.URL, testSpec)
	if info.Fading != "rayleigh" {
		t.Errorf("default session fading = %q, want rayleigh", info.Fading)
	}

	// A Rician session is accepted, echoed in the metadata, and streams
	// deterministically: equal specs produce byte-identical streams.
	spec := `{
		"model": {"type": "eq22", "fading": "rician", "params": {"k_factor": 3.5, "los_phase_rad": 0.2}},
		"seed": 515,
		"blocks": 4,
		"idft_points": 64
	}`
	info = createSession(t, ts.URL, spec)
	if info.Fading != "rician" {
		t.Errorf("session fading = %q, want rician", info.Fading)
	}
	if !strings.Contains(string(info.Spec), `"fading":"rician"`) {
		t.Errorf("canonical spec does not carry the fading model: %s", info.Spec)
	}
	status, a := fetchStream(t, ts.URL, info.ID, "?format=bin&gaussian=1")
	if status != http.StatusOK || len(a) == 0 {
		t.Fatalf("stream status %d, %d bytes", status, len(a))
	}
	info2 := createSession(t, ts.URL, spec)
	_, b := fetchStream(t, ts.URL, info2.ID, "?format=bin&gaussian=1")
	if string(a) != string(b) {
		t.Errorf("equal Rician specs produced different streams")
	}

	// A nonstationary trajectory session streams and resumes mid-trajectory:
	// ?from=2 reproduces the tail bytes of a from-0 stream.
	nsSpec := `{
		"model": {"type": "identity", "n": 1, "fading": "nonstationary_doppler",
			"params": {"segments": [
				{"blocks": 2, "normalized_doppler": 0.02},
				{"blocks": 2, "normalized_doppler": 0.1}
			]}},
		"seed": 616,
		"blocks": 4,
		"idft_points": 64
	}`
	nsInfo := createSession(t, ts.URL, nsSpec)
	if nsInfo.Fading != "nonstationary_doppler" {
		t.Errorf("session fading = %q, want nonstationary_doppler", nsInfo.Fading)
	}
	_, full := fetchStream(t, ts.URL, nsInfo.ID, "?format=bin&gaussian=1")
	_, tail := fetchStream(t, ts.URL, nsInfo.ID, "?format=bin&gaussian=1&from=2")
	if len(tail) == 0 || len(tail)*2 != len(full) {
		t.Fatalf("resume sizes: full %d bytes, tail %d", len(full), len(tail))
	}
	if string(full[len(full)-len(tail):]) != string(tail) {
		t.Errorf("mid-trajectory resume is not byte-identical to the from-0 tail")
	}
}

func TestSessionFadingRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Window: 2})

	post := func(spec string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Out-of-vocabulary fading model: 400 with the vocabulary in the message.
	status, body := post(`{"model": {"type": "eq22", "fading": "weibull"}, "seed": 1, "blocks": 2, "idft_points": 64}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "unknown fading model") {
		t.Errorf("unknown fading: status %d body %s", status, body)
	}

	// In-vocabulary model with missing parameters.
	status, body = post(`{"model": {"type": "eq22", "fading": "rician"}, "seed": 1, "blocks": 2, "idft_points": 64}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "k_factor") {
		t.Errorf("rician without params: status %d body %s", status, body)
	}

	// Nonstationary trajectory conflicts with a top-level Doppler.
	status, body = post(`{
		"model": {"type": "identity", "n": 1, "fading": "nonstationary_doppler",
			"params": {"segments": [{"blocks": 2, "normalized_doppler": 0.1}]}},
		"seed": 1, "blocks": 2, "idft_points": 64, "normalized_doppler": 0.05
	}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "per-segment Doppler") {
		t.Errorf("trajectory with top-level Doppler: status %d body %s", status, body)
	}
}

// TestSetupKeyDistinguishesFadingParams pins the setup-cache content address:
// specs differing only in fading model or parameters must hash to distinct
// keys (sharing a cached Stream across them would serve the wrong channel),
// while foreign parameters of another model must not split the key.
func TestSetupKeyDistinguishesFadingParams(t *testing.T) {
	base := func() *SessionSpec {
		return &SessionSpec{
			Model:  chanspec.Model{Type: chanspec.ModelEq22},
			Seed:   9,
			Blocks: 4,
		}
	}
	rayleighKey := base().setupKey()

	rician := base()
	rician.Model.Fading = chanspec.FadingRician
	rician.Model.Params = &chanspec.FadingParams{KFactor: 3}
	k3 := rician.setupKey()
	if k3 == rayleighKey {
		t.Fatal("rician spec shares the rayleigh setup key")
	}
	rician5 := base()
	rician5.Model.Fading = chanspec.FadingRician
	rician5.Model.Params = &chanspec.FadingParams{KFactor: 5}
	if rician5.setupKey() == k3 {
		t.Fatal("distinct k_factor values share one setup key")
	}
	// A foreign parameter of another model does not split the key.
	noisy := base()
	noisy.Model.Fading = chanspec.FadingRician
	noisy.Model.Params = &chanspec.FadingParams{KFactor: 3, M: 7}
	if noisy.setupKey() != k3 {
		t.Fatal("foreign nakagami parameter split the rician setup key")
	}

	// The cache itself hands distinct Streams to distinct parameters.
	cache := newSetupCache(8, &metrics{})
	s3, err := cache.stream(rician)
	if err != nil {
		t.Fatal(err)
	}
	s5, err := cache.stream(rician5)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s5 {
		t.Fatal("setup cache shares one Stream across distinct k_factor values")
	}
	again, err := cache.stream(rician)
	if err != nil {
		t.Fatal(err)
	}
	if again != s3 {
		t.Fatal("equal specs missed the setup cache")
	}
}
