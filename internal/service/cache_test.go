package service

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// mustSpec parses a spec literal or fails the test.
func mustSpec(t *testing.T, body string) *SessionSpec {
	t.Helper()
	spec, err := ParseSpec(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return spec
}

// TestSetupCacheSharesStreamAcrossSessions is the tentpole's core assertion:
// two sessions created from identical specs hold the same *rayleigh.Stream
// (pointer identity — one setup artifact, not two equal ones), and the
// hit/miss counters account for exactly one build.
func TestSetupCacheSharesStreamAcrossSessions(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	a, err := s.Manager().Create(mustSpec(t, testSpec))
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	b, err := s.Manager().Create(mustSpec(t, testSpec))
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}
	if a.Stream() != b.Stream() {
		t.Fatal("identical specs built two distinct setup artifacts")
	}
	if hits, misses := s.metrics.specCacheHits.Load(), s.metrics.specCacheMisses.Load(); hits != 1 || misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", hits, misses)
	}

	// A different seed is a different channel: distinct artifact, second miss.
	c, err := s.Manager().Create(mustSpec(t, `{"model": {"type": "eq22"}, "seed": 4243, "blocks": 8, "idft_points": 64}`))
	if err != nil {
		t.Fatalf("Create c: %v", err)
	}
	if c.Stream() == a.Stream() {
		t.Fatal("distinct seeds shared one setup artifact")
	}
	if misses := s.metrics.specCacheMisses.Load(); misses != 2 {
		t.Fatalf("cache misses = %d, want 2", misses)
	}
}

// TestSetupCacheKeyIgnoresBlocks pins the keying rule: blocks only bounds the
// served range, so sessions of different lengths over the same channel share
// one artifact — and defaults are resolved, so an omitted field and its
// explicit default collide.
func TestSetupCacheKeyIgnoresBlocks(t *testing.T) {
	short := mustSpec(t, `{"model": {"type": "eq22"}, "seed": 1, "blocks": 4}`)
	long := mustSpec(t, `{"model": {"type": "eq22"}, "seed": 1, "blocks": 4096}`)
	if short.setupKey() != long.setupKey() {
		t.Fatal("setup key depends on blocks")
	}
	expl := mustSpec(t, `{"model": {"type": "eq22"}, "seed": 1, "blocks": 4,
		"idft_points": 4096, "normalized_doppler": 0.05, "input_variance": 0.5, "method": "generalized"}`)
	if short.setupKey() != expl.setupKey() {
		t.Fatal("explicit defaults hash differently from omitted fields")
	}
	other := mustSpec(t, `{"model": {"type": "eq22"}, "seed": 1, "blocks": 4, "idft_points": 2048}`)
	if short.setupKey() == other.setupKey() {
		t.Fatal("setup key ignores the block length")
	}
}

// TestSetupCacheSingleflight launches many concurrent creates of one spec:
// the setup must run exactly once, and every session must end up on the one
// shared artifact.
func TestSetupCacheSingleflight(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	const goroutines = 16
	spec := mustSpec(t, testSpec)
	sessions := make([]*Session, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sessions[g], errs[g] = s.Manager().Create(spec)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("create %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if sessions[g].Stream() != sessions[0].Stream() {
			t.Fatalf("session %d holds a different artifact", g)
		}
	}
	if misses := s.metrics.specCacheMisses.Load(); misses != 1 {
		t.Fatalf("%d concurrent creates performed %d setups, want 1", goroutines, misses)
	}
}

// TestSetupCacheLRUBound verifies the memory bound: the cache never holds
// more completed artifacts than its cap, evicting least-recently-used first.
func TestSetupCacheLRUBound(t *testing.T) {
	s := New(Config{CacheSpecs: 2})
	defer s.Close()

	specs := []string{
		`{"model": {"type": "eq22"}, "seed": 1, "blocks": 4, "idft_points": 64}`,
		`{"model": {"type": "eq22"}, "seed": 2, "blocks": 4, "idft_points": 64}`,
		`{"model": {"type": "eq22"}, "seed": 3, "blocks": 4, "idft_points": 64}`,
	}
	for _, body := range specs {
		if _, err := s.Manager().Create(mustSpec(t, body)); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}
	if size := s.cache.size(); size != 2 {
		t.Fatalf("cache holds %d artifacts, cap 2", size)
	}
	// Seed 1 was the LRU victim: recreating it is a miss; seed 3 is a hit.
	misses := s.metrics.specCacheMisses.Load()
	if _, err := s.Manager().Create(mustSpec(t, specs[2])); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if got := s.metrics.specCacheMisses.Load(); got != misses {
		t.Fatal("recently used artifact was evicted")
	}
	if _, err := s.Manager().Create(mustSpec(t, specs[0])); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if got := s.metrics.specCacheMisses.Load(); got != misses+1 {
		t.Fatal("LRU artifact survived past the cap")
	}
}

// TestSetupCacheDisabled covers the escape hatch: a negative cap builds every
// session from scratch and shares nothing.
func TestSetupCacheDisabled(t *testing.T) {
	s := New(Config{CacheSpecs: -1})
	defer s.Close()

	a, err := s.Manager().Create(mustSpec(t, testSpec))
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	b, err := s.Manager().Create(mustSpec(t, testSpec))
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}
	if a.Stream() == b.Stream() {
		t.Fatal("disabled cache still shared an artifact")
	}
	if hits := s.metrics.specCacheHits.Load(); hits != 0 {
		t.Fatalf("disabled cache recorded %d hits", hits)
	}
}

// TestCacheHitStreamsByteIdentical is the wire-level half of the acceptance
// criterion: the payload of a session served from a cached artifact must be
// byte-identical to one built cold (cache disabled) — caching is invisible
// to clients.
func TestCacheHitStreamsByteIdentical(t *testing.T) {
	cached, tsCached := newTestServer(t, Config{Workers: 2})
	_, tsCold := newTestServer(t, Config{Workers: 2, CacheSpecs: -1})

	first := createSession(t, tsCached.URL, testSpec).ID
	second := createSession(t, tsCached.URL, testSpec).ID
	if hits := cached.metrics.specCacheHits.Load(); hits != 1 {
		t.Fatalf("second create recorded %d cache hits, want 1", hits)
	}
	cold := createSession(t, tsCold.URL, testSpec).ID

	_, wantBytes := fetchStream(t, tsCold.URL, cold, "?format=bin&gaussian=1")
	for _, id := range []string{first, second} {
		_, got := fetchStream(t, tsCached.URL, id, "?format=bin&gaussian=1")
		if !bytes.Equal(got, wantBytes) {
			t.Fatalf("session %s (cached server) diverged from the cold-built stream", id)
		}
	}
}
