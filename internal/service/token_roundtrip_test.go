package service

import (
	"bytes"
	"testing"
)

// TestTokenSpecRoundTrip is the canonical-spec ↔ token contract: for every
// model family, the spec embedded in a token re-parses, re-validates, derives
// the same setup-cache content address as the original (so rebuilt sessions
// share setup artifacts with locally created ones), and re-canonicalizes to
// the same bytes (so a token minted from a rebuilt session is payload-
// identical to the original).
func TestTokenSpecRoundTrip(t *testing.T) {
	specs := []string{
		`{"model":{"type":"eq22"},"seed":1,"blocks":4}`,
		`{"model":{"type":"eq22","n":3},"seed":1,"blocks":4,"idft_points":64}`,
		`{"model":{"type":"identity","n":2},"seed":-9,"blocks":2,"normalized_doppler":0.1}`,
		`{"model":{"type":"exponential","n":3,"rho":0.5,"phase_rad":0.2},"seed":3,"blocks":8}`,
		`{"model":{"type":"constant","n":4,"rho":0.3,"power":2},"seed":4,"blocks":1,"input_variance":0.25}`,
		`{"model":{"type":"explicit","covariance":[[1,[0.5,0.1]],[[0.5,-0.1],1]]},"seed":5,"blocks":3}`,
		`{"model":{"type":"spectral","n":2,"carrier_spacing_hz":10000,"max_doppler_hz":100,"rms_delay_spread_s":1e-6,"delay_step_s":1e-7},"seed":6,"blocks":2}`,
		`{"model":{"type":"spatial","n":2,"spacing_wavelengths":0.5,"angular_spread_rad":0.1,"mean_angle_rad":1.0},"seed":7,"blocks":2}`,
		`{"model":{"type":"eq22","fading":"rician","params":{"k_factor":4}},"seed":8,"blocks":2}`,
		`{"model":{"type":"eq22","fading":"nakagami_m","params":{"m":2}},"seed":9,"blocks":2}`,
		`{"model":{"type":"eq22","fading":"suzuki","params":{"shadow_sigma_db":4}},"seed":10,"blocks":2}`,
	}
	for _, raw := range specs {
		spec, err := ParseSpec(bytes.NewReader([]byte(raw)))
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", raw, err)
		}
		if err := spec.Validate(Limits{}); err != nil {
			t.Fatalf("Validate(%s): %v", raw, err)
		}
		payload := spec.tokenSpec()
		back, err := ParseSpec(bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("token spec of %s does not re-parse: %v\npayload: %s", raw, err, payload)
		}
		if err := back.Validate(Limits{}); err != nil {
			t.Fatalf("token spec of %s does not re-validate: %v\npayload: %s", raw, err, payload)
		}
		if got, want := back.setupKey(), spec.setupKey(); got != want {
			t.Errorf("setup key drifts through the token for %s:\n  original %s\n  rebuilt  %s", raw, want, got)
		}
		if again := back.tokenSpec(); !bytes.Equal(again, payload) {
			t.Errorf("token spec is not a fixed point for %s:\n  first  %s\n  second %s", raw, payload, again)
		}
		if back.Seed != spec.Seed || back.Blocks != spec.Blocks {
			t.Errorf("seed/blocks drift through the token for %s", raw)
		}
	}
}
