package service

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// atomicClock is an injectable test clock safe to advance while server
// goroutines read it.
type atomicClock struct {
	nanos atomic.Int64
}

func newAtomicClock(start time.Time) *atomicClock {
	c := &atomicClock{}
	c.nanos.Store(start.UnixNano())
	return c
}

func (c *atomicClock) now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *atomicClock) advance(d time.Duration) { c.nanos.Add(int64(d)) }

// TestShardedTableBasics exercises the full CRUD surface across many shards:
// every session stays resolvable, the shard sizes always sum to Len, and the
// keys actually spread over more than one shard.
func TestShardedTableBasics(t *testing.T) {
	s := New(Config{Shards: 8})
	defer s.Close()
	m := s.Manager()

	const sessions = 64
	ids := make([]string, 0, sessions)
	for i := 0; i < sessions; i++ {
		spec := mustSpec(t, fmt.Sprintf(`{"model": {"type": "eq22"}, "seed": %d, "blocks": 4, "idft_points": 64}`, i))
		sess, err := m.Create(spec)
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		ids = append(ids, sess.ID)
	}
	if m.Len() != sessions {
		t.Fatalf("Len = %d, want %d", m.Len(), sessions)
	}
	sizes := m.ShardSizes()
	if len(sizes) != 8 {
		t.Fatalf("ShardSizes has %d shards, want 8", len(sizes))
	}
	total, populated := 0, 0
	for _, n := range sizes {
		total += n
		if n > 0 {
			populated++
		}
	}
	if total != sessions {
		t.Fatalf("shard sizes sum to %d, want %d", total, sessions)
	}
	if populated < 2 {
		t.Fatalf("%d sessions landed in %d shard(s); the hash does not spread", sessions, populated)
	}
	for _, id := range ids {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("session %s not resolvable", id)
		}
	}
	for _, id := range ids {
		if !m.Delete(id) {
			t.Fatalf("Delete %s returned false", id)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", m.Len())
	}
}

// TestSweepPinsActiveStreams is the regression test for the lifecycle bug
// where a consumer streaming slower than the TTL had its session swept out
// from under it mid-stream: an active stream must pin the session, and the
// idle clock must restart when the stream ends.
func TestSweepPinsActiveStreams(t *testing.T) {
	clock := newAtomicClock(time.Unix(1700000000, 0))
	s, ts := newTestServer(t, Config{
		Workers: 2, Window: 2,
		SessionTTL: time.Minute, SweepInterval: time.Hour,
		now: clock.now,
	})
	// Large enough that the handler cannot outrun the reader into the
	// socket buffers and finish early.
	id := createSession(t, ts.URL, `{"model": {"type": "eq22"}, "seed": 7, "blocks": 100000, "idft_points": 1024}`).ID
	sess, ok := s.Manager().Get(id)
	if !ok {
		t.Fatal("created session not resolvable")
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/stream?format=bin")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	if _, _, _, err := DecodeBinaryFrame(resp.Body); err != nil {
		t.Fatalf("first frame: %v", err)
	}

	// The reader stalls past the TTL; the pinned session must survive.
	clock.advance(10 * time.Minute)
	if n := s.Manager().Sweep(); n != 0 {
		t.Fatalf("sweep evicted %d session(s) under an active stream", n)
	}
	// The stream is still live: more frames arrive.
	for i := 0; i < 3; i++ {
		if _, _, _, err := DecodeBinaryFrame(resp.Body); err != nil {
			t.Fatalf("frame after sweep: %v", err)
		}
	}
	resp.Body.Close() // abandon; the handler unpins and touches on the way out

	// endStream restarts the idle clock, so the session outlives the stream
	// by a full TTL...
	waitForUnpin(t, sess)
	clock.advance(30 * time.Second)
	if n := s.Manager().Sweep(); n != 0 {
		t.Fatalf("sweep evicted %d session(s) within the post-stream TTL", n)
	}
	// ...and only then expires.
	clock.advance(2 * time.Minute)
	if n := s.Manager().Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d session(s) after the TTL, want 1", n)
	}
}

// waitForUnpin blocks until the session's stream refcount drains (the
// handler goroutine needs a moment to observe an abandoned connection and
// release its reference).
func waitForUnpin(t *testing.T, sess *Session) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for sess.streams.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream refcount stuck at %d", sess.streams.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCreateSweepsWhenFull covers the opportunistic sweep: a table full of
// expired sessions must not turn creates away until the janitor happens to
// run — Create reclaims the expired capacity itself.
func TestCreateSweepsWhenFull(t *testing.T) {
	clock := newAtomicClock(time.Unix(1700000000, 0))
	s := New(Config{MaxSessions: 2, SessionTTL: time.Minute, SweepInterval: time.Hour, now: clock.now})
	defer s.Close()
	m := s.Manager()

	for seed := 0; seed < 2; seed++ {
		if _, err := m.Create(mustSpec(t, fmt.Sprintf(`{"model": {"type": "eq22"}, "seed": %d, "blocks": 4, "idft_points": 64}`, seed))); err != nil {
			t.Fatalf("Create %d: %v", seed, err)
		}
	}
	// Table full and everything fresh: the cap holds.
	if _, err := m.Create(mustSpec(t, testSpec)); err == nil {
		t.Fatal("create beyond the cap succeeded with fresh sessions")
	}
	// Everything expired: the same create now reclaims and succeeds.
	clock.advance(2 * time.Minute)
	sess, err := m.Create(mustSpec(t, testSpec))
	if err != nil {
		t.Fatalf("Create after expiry: %v", err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after opportunistic sweep, want 1", m.Len())
	}
	if _, ok := m.Get(sess.ID); !ok {
		t.Fatal("fresh session not resolvable")
	}
	if evicted := s.metrics.sessionsEvicted.Load(); evicted != 2 {
		t.Fatalf("sessions_evicted = %d, want 2", evicted)
	}
}

// TestCreateAfterCloseAllRejected pins the shutdown race: a create whose
// setup straddles CloseAll must not insert into a drained shard (which would
// leak an unclosable session and a phantom count).
func TestCreateAfterCloseAllRejected(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	m := s.Manager()
	if _, err := m.Create(mustSpec(t, testSpec)); err != nil {
		t.Fatalf("Create: %v", err)
	}
	m.CloseAll()
	if _, err := m.Create(mustSpec(t, testSpec)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Create after CloseAll: err = %v, want ErrShuttingDown", err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after CloseAll, want 0", m.Len())
	}
}

// TestGetDeleteSweepRaceStress hammers the table from every mutation path at
// once. Run under -race it is the regression test for the old unlocked
// touch-after-Get, which could race Delete/Sweep closing the same session.
func TestGetDeleteSweepRaceStress(t *testing.T) {
	clock := newAtomicClock(time.Unix(1700000000, 0))
	// MaxSessions < 0 bypasses the cap (0 would select the default 256).
	s := New(Config{Shards: 4, MaxSessions: -1, SessionTTL: time.Millisecond, SweepInterval: time.Hour, now: clock.now})
	defer s.Close()
	m := s.Manager()

	const (
		workers = 4
		rounds  = 200
	)
	specs := make([]*SessionSpec, 8)
	for i := range specs {
		specs[i] = mustSpec(t, fmt.Sprintf(`{"model": {"type": "eq22"}, "seed": %d, "blocks": 4, "idft_points": 64}`, i))
	}
	ids := make(chan string, workers*rounds)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				sess, err := m.Create(specs[(w*rounds+i)%len(specs)])
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				ids <- sess.ID
			}
		}(w)
	}
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			seen := make([]string, 0, 64)
			for {
				select {
				case id := <-ids:
					seen = append(seen, id)
					if sess, ok := m.Get(id); ok && sess.ID != id {
						t.Errorf("Get(%s) returned session %s", id, sess.ID)
					}
					if len(seen)%3 == 0 {
						m.Delete(seen[len(seen)-1])
					}
					for _, old := range seen {
						m.Get(old)
					}
				case <-stop:
					return
				}
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.advance(time.Millisecond)
				m.Sweep()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	total := 0
	for _, n := range m.ShardSizes() {
		total += n
	}
	if total != m.Len() {
		t.Fatalf("shard sizes sum to %d but Len() = %d", total, m.Len())
	}
}
