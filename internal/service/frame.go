package service

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"math"

	rayleigh "repro"
	"repro/internal/chanspec"
)

// Stream formats.
const (
	// FormatNDJSON is one JSON object per block, newline-terminated.
	FormatNDJSON = "ndjson"
	// FormatBinary is the compact binary framing documented in
	// docs/service.md (magic "FDB1", little-endian header, raw float64
	// payload). Roughly 2.4x denser than NDJSON and allocation-free to
	// encode.
	FormatBinary = "bin"
)

// binMagic opens every binary frame.
var binMagic = [4]byte{'F', 'D', 'B', '1'}

// binFlagGaussian marks frames carrying the complex Gaussian payload after
// the envelopes.
const binFlagGaussian = 0x01

// frameEncoder serializes one block; implementations own reusable scratch so
// steady-state encoding performs no per-block allocation (binary) or only
// encoding/json's internal buffering (NDJSON).
type frameEncoder interface {
	encode(w io.Writer, index uint64, b *rayleigh.Block, gaussian bool) (int, error)
}

// newFrameEncoder returns the encoder for a format already validated by the
// handler.
func newFrameEncoder(format string) frameEncoder {
	if format == FormatBinary {
		return &binaryEncoder{}
	}
	return &ndjsonEncoder{}
}

// blockRecord is the NDJSON shape of one block.
type blockRecord struct {
	Block     uint64               `json:"block"`
	Envelopes [][]float64          `json:"envelopes"`
	Gaussian  [][]chanspec.Complex `json:"gaussian,omitempty"`
}

// ndjsonEncoder writes blockRecords. The gaussian scratch and the
// json.Encoder (bound to the stream's writer on first use) persist across
// blocks of one stream.
type ndjsonEncoder struct {
	gaussian [][]chanspec.Complex
	cw       *countingWriter
	enc      *json.Encoder
}

func (e *ndjsonEncoder) encode(w io.Writer, index uint64, b *rayleigh.Block, gaussian bool) (int, error) {
	rec := blockRecord{Block: index, Envelopes: b.Envelopes}
	if gaussian {
		if len(e.gaussian) != len(b.Gaussian) {
			e.gaussian = make([][]chanspec.Complex, len(b.Gaussian))
		}
		for j, row := range b.Gaussian {
			if len(e.gaussian[j]) != len(row) {
				e.gaussian[j] = make([]chanspec.Complex, len(row))
			}
			for l, v := range row {
				e.gaussian[j][l] = chanspec.Complex(v)
			}
		}
		rec.Gaussian = e.gaussian
	}
	if e.cw == nil || e.cw.w != w {
		e.cw = &countingWriter{w: w}
		e.enc = json.NewEncoder(e.cw)
		e.enc.SetEscapeHTML(false)
	}
	e.cw.n = 0
	if err := e.enc.Encode(&rec); err != nil {
		return e.cw.n, err
	}
	return e.cw.n, nil
}

// binaryEncoder writes the compact frame into a reusable buffer, then to w.
type binaryEncoder struct {
	buf []byte
}

func (e *binaryEncoder) encode(w io.Writer, index uint64, b *rayleigh.Block, gaussian bool) (int, error) {
	n := len(b.Envelopes)
	m := 0
	if n > 0 {
		m = len(b.Envelopes[0])
	}
	need := 24 + n*m*8
	if gaussian {
		need += n * m * 16
	}
	if cap(e.buf) < need {
		e.buf = make([]byte, 0, need)
	}
	buf := e.buf[:0]
	buf = append(buf, binMagic[:]...)
	var flags byte
	if gaussian {
		flags |= binFlagGaussian
	}
	buf = append(buf, flags, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, index)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	for _, row := range b.Envelopes {
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	if gaussian {
		for _, row := range b.Gaussian {
			for _, v := range row {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(v)))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(v)))
			}
		}
	}
	e.buf = buf
	return w.Write(buf)
}

// maxFramePayload caps what DecodeBinaryFrame will allocate for one frame
// (1 GiB), so a corrupt or adversarial header cannot demand an absurd or
// integer-overflowing buffer.
const maxFramePayload = 1 << 30

// DecodeBinaryFrame parses one binary frame from r (client-side helper used
// by the load generator and tests). It returns the block index and the
// envelope/gaussian payloads, gaussian nil when the frame carries none, and
// io.EOF cleanly at end of stream.
func DecodeBinaryFrame(r io.Reader) (index uint64, envelopes [][]float64, gaussian [][]complex128, err error) {
	var header [24]byte
	if _, err = io.ReadFull(r, header[:]); err != nil {
		return 0, nil, nil, err
	}
	if [4]byte(header[:4]) != binMagic {
		return 0, nil, nil, errBadFrame
	}
	flags := header[4]
	index = binary.LittleEndian.Uint64(header[8:16])
	n := int(binary.LittleEndian.Uint32(header[16:20]))
	m := int(binary.LittleEndian.Uint32(header[20:24]))
	if size := uint64(n) * uint64(m) * 24; size > maxFramePayload {
		return 0, nil, nil, errFrameTooLarge
	}
	payload := make([]byte, n*m*8)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, nil, err
	}
	envelopes = make([][]float64, n)
	for j := 0; j < n; j++ {
		envelopes[j] = make([]float64, m)
		for l := 0; l < m; l++ {
			bits := binary.LittleEndian.Uint64(payload[(j*m+l)*8:])
			envelopes[j][l] = math.Float64frombits(bits)
		}
	}
	if flags&binFlagGaussian != 0 {
		gpayload := make([]byte, n*m*16)
		if _, err = io.ReadFull(r, gpayload); err != nil {
			return 0, nil, nil, err
		}
		gaussian = make([][]complex128, n)
		for j := 0; j < n; j++ {
			gaussian[j] = make([]complex128, m)
			for l := 0; l < m; l++ {
				re := math.Float64frombits(binary.LittleEndian.Uint64(gpayload[(j*m+l)*16:]))
				im := math.Float64frombits(binary.LittleEndian.Uint64(gpayload[(j*m+l)*16+8:]))
				gaussian[j][l] = complex(re, im)
			}
		}
	}
	return index, envelopes, gaussian, nil
}

// errBadFrame reports a corrupt binary frame.
var errBadFrame = errInvalid("service: bad binary frame magic")

// errFrameTooLarge reports a frame header demanding more than
// maxFramePayload bytes.
var errFrameTooLarge = errInvalid("service: binary frame exceeds size limit")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// countingWriter tracks payload bytes for the metrics counters.
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}
