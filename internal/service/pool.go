package service

import (
	"context"
	"errors"
	"sync"
)

// ErrPoolClosed reports a submit after shutdown began.
var ErrPoolClosed = errors.New("service: worker pool closed")

// errSessionClosed reports a stream aborted by session eviction/deletion.
var errSessionClosed = errors.New("service: session closed")

// pool is the bounded worker pool sharding block generation across sessions.
// The queue bound is the backpressure mechanism: when every worker is busy
// and the queue is full, submit blocks the *handler* goroutine (one stream
// slows down) while workers keep draining — a slow consumer can idle its own
// stream but never a generator, because completed work is handed off through
// per-job channels that never block (see blockJob.run).
type pool struct {
	jobs chan *blockJob
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// newPool starts workers goroutines behind a queue of the given depth.
func newPool(workers, depth int) *pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = workers
	}
	p := &pool{
		jobs: make(chan *blockJob, depth),
		done: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case j := <-p.jobs:
					j.run()
				case <-p.done:
					return
				}
			}
		}()
	}
	return p
}

// submit enqueues j, blocking while the queue is full. It aborts with the
// corresponding error when the request context ends, the session dies, or
// the pool shuts down. Jobs are typed (not closures) so the steady-state
// serving path allocates nothing per block.
func (p *pool) submit(ctx context.Context, sessionDone <-chan struct{}, j *blockJob) error {
	select {
	case <-p.done:
		return ErrPoolClosed
	default:
	}
	select {
	case p.jobs <- j:
		return nil
	case <-p.done:
		return ErrPoolClosed
	case <-ctx.Done():
		return ctx.Err()
	case <-sessionDone:
		return errSessionClosed
	}
}

// queueDepth reports how many submitted jobs are waiting for a worker.
func (p *pool) queueDepth() int { return len(p.jobs) }

// close stops the workers. Jobs still queued are dropped, which is safe
// because every waiter on a job also watches a shutdown or context signal.
func (p *pool) close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}
