package service

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/token"
)

// errUnknownSession is the stream handler's 404: no table entry and no token
// to rebuild from.
var errUnknownSession = errors.New("service: unknown session")

// errTokensDisabled reports a token-bearing resume on a replica with no
// verification keys: the replica cannot tell a genuine token from a forged
// one, so it refuses rather than trusts.
var errTokensDisabled = errors.New("service: token resume requires verification keys (-token-key); this replica has none")

// mintToken signs the session's self-describing resume token: any replica
// holding a verifying key can rebuild the exact stream from it with no other
// state. The embedded spec is canonical (model canonicalized, stable field
// order), so equivalent specs mint byte-identical payloads on every replica.
func (s *Server) mintToken(sess *Session) (string, error) {
	spec := sess.Spec.tokenSpec()
	t := &token.Token{
		ID:       sess.ID,
		SpecHash: sha256.Sum256(spec),
		Spec:     spec,
		Seed:     sess.Spec.Seed,
		Blocks:   sess.Blocks(),
	}
	if ttl := s.cfg.TokenTTL; ttl > 0 {
		t.Expiry = s.cfg.now().Add(ttl).Unix()
	}
	return s.cfg.Keyring.Sign(t)
}

// bearerToken extracts the resume token from Authorization: Bearer or the
// ?token= query parameter (for clients that cannot set headers).
func bearerToken(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
		return ""
	}
	return r.URL.Query().Get("token")
}

// resumeFromToken rebuilds a session this replica has never seen from the
// request's signed token: verify, re-parse and re-validate the embedded
// canonical spec, rebuild the Stream through the shared setup cache (an O(1)
// cache hit when any session of the same channel passed through this
// replica), and adopt the session into the table under its original id. The
// returned session holds a stream reference; the caller releases it with
// endStream.
func (s *Server) resumeFromToken(r *http.Request) (*Session, error) {
	raw := bearerToken(r)
	if raw == "" {
		return nil, errUnknownSession
	}
	if s.cfg.Keyring == nil {
		return nil, errTokensDisabled
	}
	t, err := s.cfg.Keyring.Verify(raw, s.cfg.now())
	if err != nil {
		return nil, err
	}
	id := r.PathValue("id")
	if t.ID != id {
		// A valid token replayed under a different path id could poison this
		// replica's table entry for that id; the binding check makes the
		// token useless outside its own session.
		return nil, fmt.Errorf("%w: token is for session %q, not %q", token.ErrMalformed, t.ID, id)
	}
	spec, err := ParseSpec(bytes.NewReader(t.Spec))
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(s.cfg.Limits); err != nil {
		// This replica's limits may be tighter than the origin's; an honest
		// bad_spec beats building a stream the operator forbade here.
		return nil, err
	}
	if spec.Seed != t.Seed || uint64(spec.Blocks) != t.Blocks {
		return nil, fmt.Errorf("%w: token seed/blocks disagree with embedded spec", token.ErrMalformed)
	}
	return s.manager.AdoptForStream(id, spec)
}

// tokenErrorStatus maps resume failures to statuses: absent token is the
// plain 404 of an unknown session, authentication failures are 401, a spec or
// version this build cannot serve is 400, shutdown is 503.
func tokenErrorStatus(err error) int {
	switch {
	case errors.Is(err, errUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, token.ErrVersion), errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnauthorized
	}
}
