package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics holds the service counters exposed at /metrics. Everything is a
// monotonic counter or an instantaneous gauge read at scrape time, so the
// endpoint needs no locking against the serving paths.
type metrics struct {
	start time.Time

	sessionsCreated atomic.Int64
	sessionsDeleted atomic.Int64
	sessionsEvicted atomic.Int64
	sessionsAdopted atomic.Int64
	specsRejected   atomic.Int64

	tokensIssued  atomic.Int64
	tokenRebuilds atomic.Int64
	tokenRejected atomic.Int64

	specCacheHits   atomic.Int64
	specCacheMisses atomic.Int64

	streamsStarted atomic.Int64
	activeStreams  atomic.Int64
	blocksServed   atomic.Int64
	samplesServed  atomic.Int64
	bytesWritten   atomic.Int64
}

// write renders the Prometheus text exposition format. sessions, queue,
// shardSizes and cacheSize are gauges sampled by the caller (session table
// size, pool queue depth, per-shard session counts, cached setup artifacts).
func (m *metrics) write(w io.Writer, sessions, queue int, shardSizes []int, cacheSize int, now time.Time) {
	uptime := now.Sub(m.start).Seconds()
	blocks := m.blocksServed.Load()
	var rate float64
	if uptime > 0 {
		rate = float64(blocks) / uptime
	}
	fmt.Fprintf(w, "# HELP fadingd_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE fadingd_uptime_seconds gauge\nfadingd_uptime_seconds %.3f\n", uptime)
	fmt.Fprintf(w, "# HELP fadingd_sessions_active Live sessions in the table.\n")
	fmt.Fprintf(w, "# TYPE fadingd_sessions_active gauge\nfadingd_sessions_active %d\n", sessions)
	fmt.Fprintf(w, "# HELP fadingd_sessions_created_total Sessions accepted since start.\n")
	fmt.Fprintf(w, "# TYPE fadingd_sessions_created_total counter\nfadingd_sessions_created_total %d\n", m.sessionsCreated.Load())
	fmt.Fprintf(w, "# HELP fadingd_sessions_deleted_total Sessions removed by DELETE.\n")
	fmt.Fprintf(w, "# TYPE fadingd_sessions_deleted_total counter\nfadingd_sessions_deleted_total %d\n", m.sessionsDeleted.Load())
	fmt.Fprintf(w, "# HELP fadingd_sessions_evicted_total Sessions removed by TTL eviction.\n")
	fmt.Fprintf(w, "# TYPE fadingd_sessions_evicted_total counter\nfadingd_sessions_evicted_total %d\n", m.sessionsEvicted.Load())
	fmt.Fprintf(w, "# HELP fadingd_sessions_adopted_total Sessions rebuilt from tokens and cached in the table.\n")
	fmt.Fprintf(w, "# TYPE fadingd_sessions_adopted_total counter\nfadingd_sessions_adopted_total %d\n", m.sessionsAdopted.Load())
	fmt.Fprintf(w, "# HELP fadingd_specs_rejected_total Session specs rejected as invalid.\n")
	fmt.Fprintf(w, "# TYPE fadingd_specs_rejected_total counter\nfadingd_specs_rejected_total %d\n", m.specsRejected.Load())
	fmt.Fprintf(w, "# HELP fadingd_tokens_issued_total Session tokens minted in create/info responses.\n")
	fmt.Fprintf(w, "# TYPE fadingd_tokens_issued_total counter\nfadingd_tokens_issued_total %d\n", m.tokensIssued.Load())
	fmt.Fprintf(w, "# HELP fadingd_token_rebuilds_total Streams served by rebuilding a session from its token after a table miss.\n")
	fmt.Fprintf(w, "# TYPE fadingd_token_rebuilds_total counter\nfadingd_token_rebuilds_total %d\n", m.tokenRebuilds.Load())
	fmt.Fprintf(w, "# HELP fadingd_token_rejected_total Token resumes refused (expired, bad signature, unknown key, malformed).\n")
	fmt.Fprintf(w, "# TYPE fadingd_token_rejected_total counter\nfadingd_token_rejected_total %d\n", m.tokenRejected.Load())
	fmt.Fprintf(w, "# HELP fadingd_streams_started_total Stream requests accepted.\n")
	fmt.Fprintf(w, "# TYPE fadingd_streams_started_total counter\nfadingd_streams_started_total %d\n", m.streamsStarted.Load())
	fmt.Fprintf(w, "# HELP fadingd_streams_active Streams currently being served.\n")
	fmt.Fprintf(w, "# TYPE fadingd_streams_active gauge\nfadingd_streams_active %d\n", m.activeStreams.Load())
	fmt.Fprintf(w, "# HELP fadingd_blocks_served_total Blocks written to clients.\n")
	fmt.Fprintf(w, "# TYPE fadingd_blocks_served_total counter\nfadingd_blocks_served_total %d\n", blocks)
	fmt.Fprintf(w, "# HELP fadingd_blocks_per_second Mean block rate since start.\n")
	fmt.Fprintf(w, "# TYPE fadingd_blocks_per_second gauge\nfadingd_blocks_per_second %.3f\n", rate)
	fmt.Fprintf(w, "# HELP fadingd_samples_served_total Envelope samples written to clients.\n")
	fmt.Fprintf(w, "# TYPE fadingd_samples_served_total counter\nfadingd_samples_served_total %d\n", m.samplesServed.Load())
	fmt.Fprintf(w, "# HELP fadingd_bytes_written_total Payload bytes written to clients.\n")
	fmt.Fprintf(w, "# TYPE fadingd_bytes_written_total counter\nfadingd_bytes_written_total %d\n", m.bytesWritten.Load())
	fmt.Fprintf(w, "# HELP fadingd_queue_depth Generation jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE fadingd_queue_depth gauge\nfadingd_queue_depth %d\n", queue)
	fmt.Fprintf(w, "# HELP fadingd_spec_cache_hits_total Session creates served from the setup cache.\n")
	fmt.Fprintf(w, "# TYPE fadingd_spec_cache_hits_total counter\nfadingd_spec_cache_hits_total %d\n", m.specCacheHits.Load())
	fmt.Fprintf(w, "# HELP fadingd_spec_cache_misses_total Session creates that performed the full setup.\n")
	fmt.Fprintf(w, "# TYPE fadingd_spec_cache_misses_total counter\nfadingd_spec_cache_misses_total %d\n", m.specCacheMisses.Load())
	fmt.Fprintf(w, "# HELP fadingd_spec_cache_size Setup artifacts currently cached.\n")
	fmt.Fprintf(w, "# TYPE fadingd_spec_cache_size gauge\nfadingd_spec_cache_size %d\n", cacheSize)
	fmt.Fprintf(w, "# HELP fadingd_shard_sessions Live sessions per table shard.\n")
	fmt.Fprintf(w, "# TYPE fadingd_shard_sessions gauge\n")
	for i, n := range shardSizes {
		fmt.Fprintf(w, "fadingd_shard_sessions{shard=\"%d\"} %d\n", i, n)
	}
}
