package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSessionLimit reports that the session table is full.
var ErrSessionLimit = errors.New("service: session limit reached")

// ErrShuttingDown reports a create that lost the race against CloseAll.
var ErrShuttingDown = errors.New("service: server shutting down")

// Manager owns the session table: creation against a capacity cap (with
// setup-artifact caching), lookup with TTL touching, explicit deletion, and
// idle eviction. The table is sharded — a power-of-two array of
// independently locked maps, FNV-1a over the session ID picking the shard —
// so session churn from many concurrent clients never serializes on one
// mutex. All methods are safe for concurrent use.
type Manager struct {
	shards    []managerShard
	mask      uint32
	count     atomic.Int64 // live sessions across all shards
	lastSweep atomic.Int64 // unix nanoseconds of the latest sweep start
	closed    atomic.Bool  // set by CloseAll; rejects late creates
	ttl       time.Duration
	max       int
	freeList  int
	now       func() time.Time
	metrics   *metrics
	cache     *setupCache
}

// managerShard is one independently locked slice of the session table.
type managerShard struct {
	mu sync.Mutex
	// guarded-by: mu
	sessions map[string]*Session
}

// newManager builds a Manager with the given shard count (rounded up to a
// power of two, minimum 1). now is injectable for eviction tests.
func newManager(shards int, ttl time.Duration, max, freeList int, now func() time.Time, m *metrics, cache *setupCache) *Manager {
	n := 1
	for n < shards {
		n <<= 1
	}
	mgr := &Manager{
		shards:   make([]managerShard, n),
		mask:     uint32(n - 1),
		ttl:      ttl,
		max:      max,
		freeList: freeList,
		now:      now,
		metrics:  m,
		cache:    cache,
	}
	for i := range mgr.shards {
		//lint:allow shardlock construction precedes publication; no other goroutine can hold the shard yet
		mgr.shards[i].sessions = make(map[string]*Session)
	}
	return mgr
}

// shardFor picks the shard owning a session ID.
func (m *Manager) shardFor(id string) *managerShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &m.shards[h.Sum32()&m.mask]
}

// opportunisticSweepGap bounds how often the create path may fall back to a
// full-table sweep: rejected creates against a genuinely full table must
// stay O(1), not hand every anonymous client a lock-every-shard scan.
const opportunisticSweepGap = time.Second

// Create validates nothing — the caller parses and validates the spec — and
// builds plus registers a session, sharing the spec's setup artifact through
// the cache. When the table is full it sweeps opportunistically (at most
// once per opportunisticSweepGap across all creates) before giving up, so a
// table full of expired sessions never blocks new work until the janitor's
// next tick, while a full table of live ones keeps rejecting cheaply.
func (m *Manager) Create(spec *SessionSpec) (*Session, error) {
	if !m.reserve() {
		if !m.trySweep() || !m.reserve() {
			return nil, fmt.Errorf("%w (%d active)", ErrSessionLimit, m.Len())
		}
	}
	stream, err := m.cache.stream(spec)
	if err != nil {
		m.count.Add(-1)
		return nil, err
	}
	s := newSession(spec, stream, m.freeList, m.now())
	sh := m.shardFor(s.ID)
	sh.mu.Lock()
	if m.closed.Load() {
		// The setup ran outside any lock, so CloseAll may have drained this
		// shard in the meantime; inserting now would leak an unclosable
		// session. The check happens under the shard lock: either CloseAll
		// has not swept this shard yet (and will remove the session), or the
		// flag is already visible here.
		sh.mu.Unlock()
		m.count.Add(-1)
		s.close()
		return nil, ErrShuttingDown
	}
	sh.sessions[s.ID] = s
	sh.mu.Unlock()
	m.metrics.sessionsCreated.Add(1)
	return s, nil
}

// reserve claims one slot against the capacity cap, undoing the claim when
// the table is full. Claim-then-check keeps concurrent creates from
// overshooting the cap without a global lock.
func (m *Manager) reserve() bool {
	if n := m.count.Add(1); m.max > 0 && n > int64(m.max) {
		m.count.Add(-1)
		return false
	}
	return true
}

// Get returns the session and marks it active. The touch happens under the
// shard lock, so it cannot race a concurrent Delete/Sweep closing the
// session (a touched session is by definition still in the table).
func (m *Manager) Get(id string) (*Session, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, false
	}
	s.touch(m.now())
	return s, true
}

// GetForStream is Get for the streaming path: it additionally acquires a
// stream reference under the shard lock, pinning the session against TTL
// eviction for as long as the stream is live. The caller must release with
// Session.endStream once the stream finishes.
func (m *Manager) GetForStream(id string) (*Session, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, false
	}
	s.touch(m.now())
	s.streams.Add(1)
	return s, true
}

// AdoptForStream installs a token-rebuilt session under its original id and
// returns it with a stream reference held (release with Session.endStream) —
// the mechanism that turns the table into a cache: the token proved the
// session exists, the table just remembers the rebuild. The stream is shared
// through the setup cache, so re-adopting a channel any session already
// carried here is O(1).
//
// The insert follows GetForStream's refcount discipline: the stream
// reference is acquired under the shard lock before the session is
// published, so a TTL sweep racing the adoption sees either no entry or a
// pinned one — never an unpinned session it could evict mid-handshake. When
// the table is full (even after an opportunistic sweep) the session is
// served without being cached: a stateless replica under session pressure
// degrades to per-request rebuilds instead of refusing resumes.
func (m *Manager) AdoptForStream(id string, spec *SessionSpec) (*Session, error) {
	if m.closed.Load() {
		return nil, ErrShuttingDown
	}
	stream, err := m.cache.stream(spec)
	if err != nil {
		return nil, err
	}
	reserved := m.reserve()
	if !reserved && m.trySweep() {
		reserved = m.reserve()
	}
	s := newSessionWithID(id, spec, stream, m.freeList, m.now())
	sh := m.shardFor(id)
	sh.mu.Lock()
	if exist, ok := sh.sessions[id]; ok {
		// A concurrent resume (or the origin create) won the insert race;
		// serve through the registered session.
		exist.touch(m.now())
		exist.streams.Add(1)
		sh.mu.Unlock()
		if reserved {
			m.count.Add(-1)
		}
		return exist, nil
	}
	if m.closed.Load() {
		sh.mu.Unlock()
		if reserved {
			m.count.Add(-1)
		}
		return nil, ErrShuttingDown
	}
	s.streams.Add(1)
	if reserved {
		sh.sessions[id] = s
	}
	sh.mu.Unlock()
	if reserved {
		m.metrics.sessionsAdopted.Add(1)
	}
	return s, nil
}

// Delete removes and closes a session, terminating its in-flight streams.
// Unlike TTL eviction, an explicit delete is never deferred by active
// streams: the client asked for the session to die.
func (m *Manager) Delete(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if !ok {
		return false
	}
	m.count.Add(-1)
	s.close()
	m.metrics.sessionsDeleted.Add(1)
	return true
}

// trySweep runs one sweep on behalf of a rejected create, unless another
// sweep started within the gap (then the claim fails and the create is
// turned away — the janitor catches up). The CAS makes concurrent rejected
// creates elect a single sweeper. It reports whether a sweep freed capacity.
func (m *Manager) trySweep() bool {
	last := m.lastSweep.Load()
	now := m.now().UnixNano()
	if now-last < int64(opportunisticSweepGap) || !m.lastSweep.CompareAndSwap(last, now) {
		return false
	}
	return m.Sweep() > 0
}

// Sweep evicts every session idle longer than the TTL and returns how many
// it removed. Sessions with active streams are pinned: a consumer slower
// than the TTL keeps its session alive, and the idle clock restarts when its
// last stream ends.
func (m *Manager) Sweep() int {
	now := m.now()
	m.lastSweep.Store(now.UnixNano())
	var victims []*Session
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if s.streams.Load() == 0 && s.idle(now) > m.ttl {
				delete(sh.sessions, id)
				victims = append(victims, s)
			}
		}
		sh.mu.Unlock()
	}
	for _, s := range victims {
		s.close()
	}
	m.count.Add(-int64(len(victims)))
	m.metrics.sessionsEvicted.Add(int64(len(victims)))
	return len(victims)
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	return int(m.count.Load())
}

// ShardSizes returns the per-shard session counts (the /metrics gauges and
// the shard-balance view for operational tooling).
func (m *Manager) ShardSizes() []int {
	sizes := make([]int, len(m.shards))
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sizes[i] = len(sh.sessions)
		sh.mu.Unlock()
	}
	return sizes
}

// CloseAll empties the table, terminating every stream, and turns away any
// create still mid-setup (shutdown path).
func (m *Manager) CloseAll() {
	m.closed.Store(true)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		victims := make([]*Session, 0, len(sh.sessions))
		for id, s := range sh.sessions {
			delete(sh.sessions, id)
			victims = append(victims, s)
		}
		sh.mu.Unlock()
		for _, s := range victims {
			s.close()
		}
		m.count.Add(-int64(len(victims)))
	}
}
