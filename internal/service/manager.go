package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrSessionLimit reports that the session table is full.
var ErrSessionLimit = errors.New("service: session limit reached")

// Manager owns the session table: creation against a capacity cap, lookup
// with TTL touching, explicit deletion, and idle eviction. All methods are
// safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	ttl      time.Duration
	max      int
	freeList int
	now      func() time.Time
	metrics  *metrics
}

// newManager builds a Manager. now is injectable for eviction tests.
func newManager(ttl time.Duration, max, freeList int, now func() time.Time, m *metrics) *Manager {
	return &Manager{
		sessions: make(map[string]*Session),
		ttl:      ttl,
		max:      max,
		freeList: freeList,
		now:      now,
		metrics:  m,
	}
}

// Create validates nothing — the caller parses and validates the spec — and
// builds plus registers a session.
func (m *Manager) Create(spec *SessionSpec) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.max > 0 && len(m.sessions) >= m.max {
		return nil, fmt.Errorf("%w (%d active)", ErrSessionLimit, len(m.sessions))
	}
	s, err := newSession(spec, m.freeList, m.now())
	if err != nil {
		return nil, err
	}
	m.sessions[s.ID] = s
	m.metrics.sessionsCreated.Add(1)
	return s, nil
}

// Get returns the session and marks it active.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	s.touch(m.now())
	return s, true
}

// Delete removes and closes a session, terminating its in-flight streams.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if !ok {
		return false
	}
	s.close()
	m.metrics.sessionsDeleted.Add(1)
	return true
}

// Sweep evicts every session idle longer than the TTL and returns how many
// it removed. In-flight streams of an evicted session terminate at their
// next block boundary.
func (m *Manager) Sweep() int {
	now := m.now()
	var victims []*Session
	m.mu.Lock()
	for id, s := range m.sessions {
		if s.idle(now) > m.ttl {
			delete(m.sessions, id)
			victims = append(victims, s)
		}
	}
	m.mu.Unlock()
	for _, s := range victims {
		s.close()
	}
	m.metrics.sessionsEvicted.Add(int64(len(victims)))
	return len(victims)
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// CloseAll empties the table, terminating every stream (shutdown path).
func (m *Manager) CloseAll() {
	m.mu.Lock()
	victims := make([]*Session, 0, len(m.sessions))
	for id, s := range m.sessions {
		delete(m.sessions, id)
		victims = append(victims, s)
	}
	m.mu.Unlock()
	for _, s := range victims {
		s.close()
	}
}
