package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestSessionMethodThreadsThroughService(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Window: 2})

	// Default method reads back normalized.
	info := createSession(t, ts.URL, testSpec)
	if info.Method != "generalized" {
		t.Errorf("default session method = %q, want generalized", info.Method)
	}

	// A conventional method is accepted when the model is in its vocabulary,
	// echoed in the session metadata, and streams deterministically.
	spec := `{
		"model": {"type": "spatial", "n": 3, "spacing_wavelengths": 1, "angular_spread_rad": 0.1745},
		"method": "beaulieu_merani",
		"seed": 4242,
		"blocks": 4,
		"idft_points": 64
	}`
	info = createSession(t, ts.URL, spec)
	if info.Method != "beaulieu_merani" {
		t.Errorf("session method = %q, want beaulieu_merani", info.Method)
	}
	if !strings.Contains(string(info.Spec), `"method":"beaulieu_merani"`) {
		t.Errorf("canonical spec does not carry the method: %s", info.Spec)
	}
	status, a := fetchStream(t, ts.URL, info.ID, "?format=bin&gaussian=1")
	if status != http.StatusOK || len(a) == 0 {
		t.Fatalf("stream status %d, %d bytes", status, len(a))
	}
	info2 := createSession(t, ts.URL, spec)
	_, b := fetchStream(t, ts.URL, info2.ID, "?format=bin&gaussian=1")
	if string(a) != string(b) {
		t.Errorf("equal specs with a conventional method produced different streams")
	}
}

func TestSessionMethodRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Window: 2})

	post := func(spec string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Unknown method name: spec validation rejects it.
	status, body := post(`{"model": {"type": "eq22"}, "method": "nope", "seed": 1, "blocks": 2, "idft_points": 64}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "unknown generation method") {
		t.Errorf("unknown method: status %d body %s", status, body)
	}

	// In-vocabulary method, out-of-vocabulary model: the method's documented
	// rejection surfaces at session creation.
	status, body = post(`{"model": {"type": "eq22"}, "method": "ertel_reed", "seed": 1, "blocks": 2, "idft_points": 64}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "not supported") {
		t.Errorf("ertel_reed on eq22: status %d body %s", status, body)
	}
}

func TestMethodsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/methods")
	if err != nil {
		t.Fatalf("GET /v1/methods: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Methods []struct {
			Name        string `json:"name"`
			Citation    string `json:"citation"`
			Constraints string `json:"constraints"`
		} `json:"methods"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Methods) != 6 {
		t.Fatalf("catalog has %d methods, want 6", len(out.Methods))
	}
	if out.Methods[0].Name != "generalized" || out.Methods[0].Citation == "" {
		t.Errorf("catalog head = %+v", out.Methods[0])
	}
}
