package rayleigh

// Benchmark harness: one benchmark per evaluation artifact of the paper (see
// DESIGN.md §3 and EXPERIMENTS.md). Each benchmark regenerates the workload
// behind the corresponding table/figure/claim and reports, through
// b.ReportMetric, the reproduction metric that EXPERIMENTS.md records
// (covariance errors, statistical deviations, Frobenius distances), so the
// "shape" comparison against the paper is visible directly in the benchmark
// output.

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cmplxmat"
	"repro/internal/core"
	"repro/internal/corrmodel"
	"repro/internal/doppler"
	"repro/internal/randx"
	"repro/internal/stats"
)

// paperEq22Matrix is the covariance matrix the paper prints as Eq. (22).
func paperEq22Matrix() *cmplxmat.Matrix {
	return cmplxmat.MustFromRows([][]complex128{
		{1, 0.3782 + 0.4753i, 0.0878 + 0.2207i},
		{0.3782 - 0.4753i, 1, 0.3063 + 0.3849i},
		{0.0878 - 0.2207i, 0.3063 - 0.3849i, 1},
	})
}

// paperEq23Matrix is the covariance matrix the paper prints as Eq. (23).
func paperEq23Matrix() *cmplxmat.Matrix {
	return cmplxmat.MustFromRows([][]complex128{
		{1, 0.8123, 0.3730},
		{0.8123, 1, 0.8123},
		{0.3730, 0.8123, 1},
	})
}

// paperSpectralModel is the Section 6 spectral configuration behind Eq. (22)
// and Fig. 4(a).
func paperSpectralModelBench() *corrmodel.SpectralModel {
	return &corrmodel.SpectralModel{
		MaxDopplerHz:   50,
		RMSDelaySpread: 1e-6,
		Power:          1,
		Frequencies:    []float64{400e3, 200e3, 0},
		Delays: [][]float64{
			{0, 1e-3, 4e-3},
			{1e-3, 0, 3e-3},
			{4e-3, 3e-3, 0},
		},
	}
}

// paperSpatialModelBench is the Section 6 spatial configuration behind
// Eq. (23) and Fig. 4(b).
func paperSpatialModelBench() *corrmodel.SpatialModel {
	return &corrmodel.SpatialModel{
		N:                  3,
		SpacingWavelengths: 1,
		AngularSpread:      math.Pi / 18,
		MeanAngle:          0,
		Power:              1,
	}
}

// paperDopplerSpec is the Section 6 Doppler configuration: M = 4096 IDFT
// points, fm = Fm/Fs = 0.05 (Fm = 50 Hz, Fs = 1 kHz), km = 204.
func paperDopplerSpec() doppler.FilterSpec {
	return doppler.FilterSpec{M: 4096, NormalizedDoppler: 0.05}
}

// maxAbsDiffMatrix returns the worst absolute entry difference between two
// matrices of equal size.
func maxAbsDiffMatrix(a, b *cmplxmat.Matrix) float64 {
	var worst float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := cmplx.Abs(a.At(i, j) - b.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// BenchmarkEq22SpectralCovariance — experiment E1: rebuild the covariance
// matrix of Eq. (22) from the physical parameters (Jakes spectral model) and
// report the worst entry deviation from the values printed in the paper.
func BenchmarkEq22SpectralCovariance(b *testing.B) {
	model := paperSpectralModelBench()
	want := paperEq22Matrix()
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := model.Covariance()
		if err != nil {
			b.Fatal(err)
		}
		worst = maxAbsDiffMatrix(res.Matrix, want)
	}
	b.ReportMetric(worst, "maxAbsErr_vs_paper")
}

// BenchmarkEq23SpatialCovariance — experiment E2: rebuild the covariance
// matrix of Eq. (23) from the Salz–Winters spatial model.
func BenchmarkEq23SpatialCovariance(b *testing.B) {
	model := paperSpatialModelBench()
	want := paperEq23Matrix()
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := model.Covariance()
		if err != nil {
			b.Fatal(err)
		}
		worst = maxAbsDiffMatrix(res.Matrix, want)
	}
	b.ReportMetric(worst, "maxAbsErr_vs_paper")
}

// benchmarkFig4 runs the real-time generator with the paper's Doppler
// parameters over the given covariance matrix, reproducing one panel of
// Fig. 4. It reports how far the time-averaged covariance of the generated
// Gaussians is from the target (the quantitative version of "the three
// envelopes are correlated as designed").
func benchmarkFig4(b *testing.B, k *cmplxmat.Matrix, seed int64) {
	b.Helper()
	gen, err := core.NewRealTimeGenerator(core.RealTimeConfig{
		Covariance:    k,
		Filter:        paperDopplerSpec(),
		InputVariance: 0.5,
		Seed:          seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := gen.GenerateBlock()
		cov, err := stats.SampleCovarianceFromSeries(blk.Gaussian)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := stats.CompareCovariance(cov, k)
		if err != nil {
			b.Fatal(err)
		}
		worst = cmp.MaxAbs
	}
	b.ReportMetric(worst, "covErr_block")
	b.ReportMetric(float64(gen.BlockLength()), "samples/block")
}

// BenchmarkFig4aSpectralEnvelopes — experiment E3: three frequency-correlated
// envelopes in the real-time (Doppler) scenario, Fig. 4(a) parameters.
func BenchmarkFig4aSpectralEnvelopes(b *testing.B) {
	res, err := paperSpectralModelBench().Covariance()
	if err != nil {
		b.Fatal(err)
	}
	benchmarkFig4(b, res.Matrix, 41)
}

// BenchmarkFig4bSpatialEnvelopes — experiment E4: three spatially-correlated
// envelopes in the real-time (Doppler) scenario, Fig. 4(b) parameters.
func BenchmarkFig4bSpatialEnvelopes(b *testing.B) {
	res, err := paperSpatialModelBench().Covariance()
	if err != nil {
		b.Fatal(err)
	}
	benchmarkFig4(b, res.Matrix, 43)
}

// BenchmarkStatisticalValidation — experiments E5 and E9: snapshot-mode
// generation against Eq. (22); reports the sample-covariance error and the
// deviation of the envelope mean/variance from Eq. (14)–(15).
func BenchmarkStatisticalValidation(b *testing.B) {
	k := paperEq22Matrix()
	gen, err := core.NewSnapshotGenerator(core.SnapshotConfig{Covariance: k, Seed: 47})
	if err != nil {
		b.Fatal(err)
	}
	const drawsPerIteration = 20000
	var covErr, meanErr, varErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples := make([][]complex128, drawsPerIteration)
		env := make([]float64, drawsPerIteration)
		for d := range samples {
			s := gen.Generate()
			samples[d] = s.Gaussian
			env[d] = s.Envelopes[0]
		}
		cov, err := stats.SampleCovariance(samples)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := stats.CompareCovariance(cov, k)
		if err != nil {
			b.Fatal(err)
		}
		covErr = cmp.MaxAbs

		mean, _ := stats.Mean(env)
		variance, _ := stats.Variance(env)
		wantMean, _ := core.ExpectedEnvelopeMean(1)
		wantVar, _ := core.GaussianPowerToEnvelopeVariance(1)
		meanErr = math.Abs(mean-wantMean) / wantMean
		varErr = math.Abs(variance-wantVar) / wantVar
	}
	b.ReportMetric(covErr, "covErr")
	b.ReportMetric(meanErr, "envMeanRelErr_eq14")
	b.ReportMetric(varErr, "envVarRelErr_eq15")
}

// BenchmarkNonPSDHandling — experiment E6: an indefinite desired covariance
// matrix. The Cholesky baselines must fail; the proposed eigen coloring must
// succeed with a Frobenius approximation error no worse than the ε-clamp of
// Sorooshyari–Daut. The reported metrics are the two approximation errors.
func BenchmarkNonPSDHandling(b *testing.B) {
	indefinite := cmplxmat.MustFromRows([][]complex128{
		{1, 0.9, -0.9},
		{0.9, 1, 0.9},
		{-0.9, 0.9, 1},
	})
	var proposedErr, epsilonErr float64
	choleskyFailures := 0
	for i := 0; i < b.N; i++ {
		if err := (&baseline.CholeskyColoring{}).Setup(indefinite); err != nil {
			choleskyFailures++
		}
		forced, err := core.ForcePSD(indefinite)
		if err != nil {
			b.Fatal(err)
		}
		proposedErr = forced.FrobeniusError

		eps := &baseline.EpsilonEigen{Epsilon: baseline.DefaultEpsilon}
		if err := eps.Setup(indefinite); err != nil {
			b.Fatal(err)
		}
		epsilonErr = eps.ApproximationError()
	}
	if choleskyFailures != b.N {
		b.Fatalf("Cholesky unexpectedly succeeded on an indefinite matrix (%d/%d failures)", choleskyFailures, b.N)
	}
	b.ReportMetric(proposedErr, "frobErr_proposed_zeroClamp")
	b.ReportMetric(epsilonErr, "frobErr_baseline_epsClamp")
}

// BenchmarkDopplerVarianceEffect — experiment E7: real-time generation with
// and without the Eq. (19) variance correction. The proposed method's
// covariance error stays small; the unit-variance assumption of [6] misses
// the target by the Doppler filter gain.
func BenchmarkDopplerVarianceEffect(b *testing.B) {
	k := paperEq22Matrix()
	spec := doppler.FilterSpec{M: 1024, NormalizedDoppler: 0.05}
	proposed, err := core.NewRealTimeGenerator(core.RealTimeConfig{
		Covariance: k, Filter: spec, InputVariance: 0.5, Seed: 53,
	})
	if err != nil {
		b.Fatal(err)
	}
	assumed, err := core.NewRealTimeGenerator(core.RealTimeConfig{
		Covariance: k, Filter: spec, InputVariance: 0.5, Seed: 53, AssumeUnitVariance: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	var errProposed, errAssumed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, gen := range map[string]*core.RealTimeGenerator{"proposed": proposed, "assumed": assumed} {
			blk := gen.GenerateBlock()
			cov, err := stats.SampleCovarianceFromSeries(blk.Gaussian)
			if err != nil {
				b.Fatal(err)
			}
			cmp, err := stats.CompareCovariance(cov, k)
			if err != nil {
				b.Fatal(err)
			}
			if name == "proposed" {
				errProposed = cmp.MaxAbs
			} else {
				errAssumed = cmp.MaxAbs
			}
		}
	}
	b.ReportMetric(errProposed, "covErr_proposed_eq19")
	b.ReportMetric(errAssumed, "covErr_unitVarAssumption")
	b.ReportMetric(proposed.SampleVariance(), "sigmaG2_eq19")
}

// BenchmarkDopplerAutocorrelation — experiment E8: the per-envelope
// autocorrelation of the Young–Beaulieu generator output versus the designed
// J0(2π·fm·d) over the first 100 lags; reports the worst deviation.
func BenchmarkDopplerAutocorrelation(b *testing.B) {
	spec := paperDopplerSpec()
	gen, err := doppler.NewGenerator(spec, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(59)
	const maxLag = 100
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Average several blocks per iteration to tame estimator noise.
		const blocks = 8
		acc := make([]float64, maxLag+1)
		for blk := 0; blk < blocks; blk++ {
			block := gen.Block(rng)
			rho, err := stats.LaggedAutocorrelation(block, maxLag)
			if err != nil {
				b.Fatal(err)
			}
			for d := range acc {
				acc[d] += rho[d]
			}
		}
		worst = 0
		for d := 0; d <= maxLag; d++ {
			got := acc[d] / blocks
			want := doppler.TheoreticalAutocorrelation(spec.NormalizedDoppler, d)
			if dev := math.Abs(got - want); dev > worst {
				worst = dev
			}
		}
	}
	b.ReportMetric(worst, "maxAutocorrDev_vs_J0")
}

// benchExponentialCovariance builds the n×n exponential correlation matrix
// K[i][j] = 0.7^|i-j|, the scalable positive definite target behind the
// N = 16 throughput cases.
func benchExponentialCovariance(n int) *cmplxmat.Matrix {
	m := cmplxmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			m.Set(i, j, complex(math.Pow(0.7, float64(d)), 0))
		}
	}
	return m
}

// throughputCovariances are the covariance targets of the throughput
// benchmarks: the paper's N = 3 matrix of Eq. (22) plus a scaled-up N = 16
// case where the batched coloring engine has room to work.
func throughputCovariances() []struct {
	name string
	k    *cmplxmat.Matrix
} {
	return []struct {
		name string
		k    *cmplxmat.Matrix
	}{
		{"N=3", paperEq22Matrix()},
		{"N=16", benchExponentialCovariance(16)},
	}
}

// BenchmarkSnapshotGenerationThroughput measures the raw cost of one snapshot
// draw — the operational figure a simulation user cares about when embedding
// the generator in a link-level Monte-Carlo loop. The allocating Generate path
// and the zero-allocation GenerateInto path are measured side by side for the
// paper's N = 3 case and a scaled-up N = 16 case.
func BenchmarkSnapshotGenerationThroughput(b *testing.B) {
	for _, cfg := range throughputCovariances() {
		gen, err := core.NewSnapshotGenerator(core.SnapshotConfig{Covariance: cfg.k, Seed: 61})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = gen.Generate()
			}
		})
		b.Run(cfg.name+"/into", func(b *testing.B) {
			gaussian := make([]complex128, gen.N())
			env := make([]float64, gen.N())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := gen.GenerateInto(gaussian, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealTimeBlockThroughput measures the cost of one full real-time
// block (M = 4096 samples per envelope) with the paper's Doppler parameters,
// for both the allocating GenerateBlock path and the zero-allocation
// GenerateBlockInto path at N = 3 and N = 16.
func BenchmarkRealTimeBlockThroughput(b *testing.B) {
	for _, cfg := range throughputCovariances() {
		gen, err := core.NewRealTimeGenerator(core.RealTimeConfig{
			Covariance:    cfg.k,
			Filter:        paperDopplerSpec(),
			InputVariance: 0.5,
			Seed:          67,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = gen.GenerateBlock()
			}
		})
		b.Run(cfg.name+"/into", func(b *testing.B) {
			blk := core.NewBlock(gen.N(), gen.BlockLength())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := gen.GenerateBlockInto(blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColoringAblationEigenVsCholesky quantifies the design choice the
// paper makes in Section 4.3 (eigen coloring instead of Cholesky): for a
// positive definite covariance matrix both produce a valid coloring matrix;
// the benchmark reports the reconstruction error of each so the precision
// cost (none) and the applicability gain (Cholesky cannot run on indefinite
// inputs at all, see BenchmarkNonPSDHandling) are both on record.
func BenchmarkColoringAblationEigenVsCholesky(b *testing.B) {
	k := paperEq22Matrix()
	var eigenErr, cholErr float64
	for i := 0; i < b.N; i++ {
		l, forced, err := core.ColoringFromCovariance(k)
		if err != nil {
			b.Fatal(err)
		}
		eigenErr = core.VerifyColoring(l, forced)

		c, err := cmplxmat.Cholesky(k)
		if err != nil {
			b.Fatal(err)
		}
		rec := cmplxmat.MustMul(c, cmplxmat.ConjTranspose(c))
		cholErr = cmplxmat.FrobeniusDistance(rec, k)
	}
	b.ReportMetric(eigenErr, "reconErr_eigen")
	b.ReportMetric(cholErr, "reconErr_cholesky")
}
