package rayleigh

import (
	"errors"
	"sync"
	"testing"
)

var streamTestCovariance = [][]complex128{
	{1, 0.3782 + 0.4753i, 0.0878 + 0.2207i},
	{0.3782 - 0.4753i, 1, 0.3063 + 0.3849i},
	{0.0878 - 0.2207i, 0.3063 - 0.3849i, 1},
}

func streamTestConfig(seed int64, parallel int) RealTimeConfig {
	return RealTimeConfig{
		Covariance:        streamTestCovariance,
		IDFTPoints:        128,
		NormalizedDoppler: 0.05,
		Seed:              seed,
		Parallel:          parallel,
	}
}

// TestStreamMatchesBlocksInto pins the Stream sequence to the batched
// RealTime sequence: same config, same blocks, bit for bit.
func TestStreamMatchesBlocksInto(t *testing.T) {
	const blocks = 5
	rt, err := NewRealTime(streamTestConfig(11, 2))
	if err != nil {
		t.Fatalf("NewRealTime: %v", err)
	}
	want := make([]*Block, blocks)
	if err := rt.BlocksInto(want); err != nil {
		t.Fatalf("BlocksInto: %v", err)
	}

	s, err := NewStream(streamTestConfig(11, 0))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	cur, err := s.NewCursor()
	if err != nil {
		t.Fatalf("NewCursor: %v", err)
	}
	var got Block
	for i := 0; i < blocks; i++ {
		if pos := cur.Position(); pos != uint64(i) {
			t.Fatalf("cursor position %d before block %d", pos, i)
		}
		if err := cur.Next(&got); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		assertBlocksEqual(t, i, want[i], &got)
	}
}

// TestStreamResume checks the ?from=k contract at the API level: seeking to
// k and reading matches blocks k.. of a from-0 pass.
func TestStreamResume(t *testing.T) {
	const blocks = 6
	s, err := NewStream(streamTestConfig(23, 0))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	cur, err := s.NewCursor()
	if err != nil {
		t.Fatalf("NewCursor: %v", err)
	}
	full := make([]*Block, blocks)
	for i := range full {
		full[i] = &Block{}
		if err := cur.Next(full[i]); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
	}

	resumed, err := s.NewCursor()
	if err != nil {
		t.Fatalf("NewCursor: %v", err)
	}
	resumed.Seek(3)
	var got Block
	for i := 3; i < blocks; i++ {
		if err := resumed.Next(&got); err != nil {
			t.Fatalf("resumed Next(%d): %v", i, err)
		}
		assertBlocksEqual(t, i, full[i], &got)
	}
}

// TestStreamConcurrentCursors drives one shared Stream from several
// goroutines, each with a private Cursor; run under -race (CI does) this
// proves the server-facing path is safe without locking, while the value
// comparison proves every goroutine sees the same deterministic sequence.
func TestStreamConcurrentCursors(t *testing.T) {
	const blocks = 16
	s, err := NewStream(streamTestConfig(29, 0))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	ref, err := s.NewCursor()
	if err != nil {
		t.Fatalf("NewCursor: %v", err)
	}
	want := make([]*Block, blocks)
	for i := range want {
		want[i] = &Block{}
		if err := ref.Next(want[i]); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
	}

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cur, err := s.NewCursor()
			if err != nil {
				errs[g] = err
				return
			}
			var got Block
			// Stride the blocks so every goroutine seeks as well as reads.
			for i := g; i < blocks; i += goroutines {
				if err := cur.BlockAt(uint64(i), &got); err != nil {
					errs[g] = err
					return
				}
				for j := range got.Envelopes {
					for l := range got.Envelopes[j] {
						if got.Envelopes[j][l] != want[i].Envelopes[j][l] ||
							got.Gaussian[j][l] != want[i].Gaussian[j][l] {
							errs[g] = errors.New("concurrent cursor diverged from reference sequence")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestNewFromPowersParallelIdentity is the regression test for the dropped
// worker count: the powers-based constructor must honor Parallel, and its
// batched output must stay bit-identical across worker counts.
func TestNewFromPowersParallelIdentity(t *testing.T) {
	correlation := [][]complex128{
		{1, 0.6, 0.2},
		{0.6, 1, 0.5},
		{0.2, 0.5, 1},
	}
	variances := []float64{1.5, 0.8, 2.0}
	build := func(parallel int) *Generator {
		g, err := NewFromPowers(PowersConfig{
			Correlation:       correlation,
			EnvelopeVariances: variances,
			Seed:              77,
			Parallel:          parallel,
		})
		if err != nil {
			t.Fatalf("NewFromPowers(parallel=%d): %v", parallel, err)
		}
		return g
	}
	parallel := build(4)
	if parallel.workers != 4 {
		// The original NewFromEnvelopePowers dropped the worker count on the
		// floor, silently serializing SnapshotsInto.
		t.Fatalf("NewFromPowers(Parallel: 4) set workers = %d, want 4", parallel.workers)
	}
	sequential := build(1)

	const draws = 300
	run := func(g *Generator) []Snapshot {
		dst := make([]Snapshot, draws)
		if err := g.SnapshotsInto(dst); err != nil {
			t.Fatalf("SnapshotsInto: %v", err)
		}
		return dst
	}
	a, b := run(sequential), run(parallel)
	for i := range a {
		for j := range a[i].Gaussian {
			if a[i].Gaussian[j] != b[i].Gaussian[j] || a[i].Envelopes[j] != b[i].Envelopes[j] {
				t.Fatalf("snapshot %d envelope %d: sequential and 4-worker powers paths differ", i, j)
			}
		}
	}

	// The legacy signature must keep producing the sequential sequence.
	legacy, err := NewFromEnvelopePowers(correlation, variances, 77)
	if err != nil {
		t.Fatalf("NewFromEnvelopePowers: %v", err)
	}
	if legacy.workers != 0 {
		t.Fatalf("NewFromEnvelopePowers set workers = %d, want 0", legacy.workers)
	}
	c := run(legacy)
	for i := range a {
		for j := range a[i].Gaussian {
			if a[i].Gaussian[j] != c[i].Gaussian[j] {
				t.Fatalf("snapshot %d envelope %d: legacy constructor diverged", i, j)
			}
		}
	}
}

// TestBlocksIntoRejectsAliasedDestinations is the regression test for the
// silent-clobber bug: duplicate *Block pointers in dst must fail loudly.
func TestBlocksIntoRejectsAliasedDestinations(t *testing.T) {
	rt, err := NewRealTime(streamTestConfig(5, 0))
	if err != nil {
		t.Fatalf("NewRealTime: %v", err)
	}
	shared := &Block{}
	err = rt.BlocksInto([]*Block{shared, nil, shared})
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("BlocksInto with aliased destinations: err = %v, want ErrInvalidConfig", err)
	}

	// Distinct (including nil) destinations still work.
	dst := []*Block{{}, nil, {}}
	if err := rt.BlocksInto(dst); err != nil {
		t.Fatalf("BlocksInto with distinct destinations: %v", err)
	}
	for i, b := range dst {
		if b == nil || len(b.Envelopes) != rt.N() {
			t.Fatalf("block %d not filled", i)
		}
	}
}

// assertBlocksEqual fails the test on the first bitwise difference.
func assertBlocksEqual(t *testing.T, i int, want, got *Block) {
	t.Helper()
	if len(want.Gaussian) != len(got.Gaussian) {
		t.Fatalf("block %d: %d rows, want %d", i, len(got.Gaussian), len(want.Gaussian))
	}
	for j := range want.Gaussian {
		for l := range want.Gaussian[j] {
			if want.Gaussian[j][l] != got.Gaussian[j][l] || want.Envelopes[j][l] != got.Envelopes[j][l] {
				t.Fatalf("block %d envelope %d sample %d differs", i, j, l)
			}
		}
	}
}
