package rayleigh

import (
	"fmt"

	"repro/internal/core"
)

// Stream is a deterministic, random-access view of the real-time block
// sequence a RealTimeConfig describes: block i is a pure function of the
// configuration (seed included) and i, so any position can be generated at
// any time, in any order, by any number of goroutines. It exists for servers
// and other concurrent hosts, which RealTime cannot back directly because
// its methods share internal scratch.
//
// A Stream holds no mutable generation state — all sampling state lives in
// Cursors — so one Stream may be shared freely across goroutines as long as
// each Cursor stays confined to a single goroutine at a time.
//
// The block sequence is exactly the batched sequence of
// RealTime.BlocksInto from the same configuration (and is bit-identical for
// every worker count); it is distinct from the sequential RealTime.Block
// stream, like every batched path in this package.
type Stream struct {
	inner *core.RealTimeGenerator
}

// NewStream builds a Stream. Config semantics match NewRealTime (Method
// included), except that Parallel is ignored: a Stream's parallelism is
// however many Cursors its callers drive concurrently.
func NewStream(cfg RealTimeConfig) (*Stream, error) {
	coreCfg, err := realtimeCoreConfig(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewRealTimeGenerator(coreCfg)
	if err != nil {
		return nil, fmt.Errorf("rayleigh: %w", err)
	}
	return &Stream{inner: inner}, nil
}

// N returns the number of envelopes per block.
func (s *Stream) N() int { return s.inner.N() }

// BlockLength returns the number of time samples per block.
func (s *Stream) BlockLength() int { return s.inner.BlockLength() }

// SampleVariance returns the σ²_g used in the whitening step: the Doppler
// filter output variance of Eq. (19), or 1 under the Sorooshyari–Daut
// backend's unit-variance assumption.
func (s *Stream) SampleVariance() float64 { return s.inner.SampleVariance() }

// TheoreticalAutocorrelation returns the designed per-envelope normalized
// autocorrelation J0(2π·fm·lag). Under FadingNonstationaryDoppler it reports
// the first trajectory segment; use TheoreticalAutocorrelationAt for later
// blocks.
func (s *Stream) TheoreticalAutocorrelation(lag int) float64 {
	return s.inner.TheoreticalAutocorrelation(lag)
}

// TheoreticalAutocorrelationAt returns the designed normalized
// autocorrelation J0(2π·fm·lag) of the trajectory segment covering the given
// block. Without FadingNonstationaryDoppler every block reports the single
// configured Doppler.
func (s *Stream) TheoreticalAutocorrelationAt(block uint64, lag int) float64 {
	return s.inner.TheoreticalAutocorrelationAt(block, lag)
}

// Diagnostics reports the covariance conditioning applied at construction.
func (s *Stream) Diagnostics() Diagnostics {
	return diagnosticsFromForced(s.inner.Diagnostics())
}

// NewCursor returns a new Cursor positioned at block 0. Cursors are
// independent: each owns the generation workspace its blocks are computed
// in, so distinct cursors never contend, and two cursors at the same
// position produce identical values.
func (s *Stream) NewCursor() (*Cursor, error) {
	scratch, err := s.inner.NewBlockScratch()
	if err != nil {
		return nil, fmt.Errorf("rayleigh: %w", err)
	}
	return &Cursor{stream: s, scratch: scratch}, nil
}

// Cursor is a position in a Stream plus the private workspace that makes
// generating there allocation-free. A Cursor is not safe for concurrent use;
// confine each to one goroutine at a time (the Stream underneath may be
// shared).
type Cursor struct {
	stream  *Stream
	scratch *core.BlockScratch
	pos     uint64
	header  core.Block
}

// Position returns the index of the block the next Next call will produce.
func (c *Cursor) Position() uint64 { return c.pos }

// Seek moves the cursor so the next Next call produces block i. Seeking is
// O(1) in any direction — resuming a stream at block k is bit-identical to
// having consumed blocks 0..k-1 first.
func (c *Cursor) Seek(i uint64) { c.pos = i }

// Next generates the block at the cursor position into b and advances the
// position by one. Storage reuse matches RealTime.BlockInto: a pre-shaped b
// (and power-of-two IDFT length) makes the call allocation-free.
func (c *Cursor) Next(b *Block) error {
	if err := c.BlockAt(c.pos, b); err != nil {
		return err
	}
	c.pos++
	return nil
}

// BlockAt generates block i into b without moving the cursor position.
func (c *Cursor) BlockAt(i uint64, b *Block) error {
	if b == nil {
		return fmt.Errorf("rayleigh: nil destination block: %w", ErrInvalidConfig)
	}
	c.header.Gaussian, c.header.Envelopes = b.Gaussian, b.Envelopes
	if err := c.stream.inner.GenerateBlockAt(i, &c.header, c.scratch); err != nil {
		return fmt.Errorf("rayleigh: %w", err)
	}
	b.Gaussian, b.Envelopes = c.header.Gaussian, c.header.Envelopes
	c.header.Gaussian, c.header.Envelopes = nil, nil
	return nil
}
