package rayleigh

// Ablation and application-workload benchmarks. These are not tied to a
// specific table or figure of the paper (those live in bench_test.go); they
// quantify the design choices DESIGN.md calls out and the downstream
// workloads the paper's introduction motivates (diversity receivers, OFDM,
// MIMO arrays).

import (
	"math"
	"testing"

	"repro/internal/cmplxmat"
	"repro/internal/corrmodel"
	"repro/internal/doppler"
	"repro/internal/dsp"
	"repro/internal/mimo"
	"repro/internal/ofdm"
	"repro/internal/randx"
	"repro/internal/stats"
)

// BenchmarkAblationIDFTvsSumOfSinusoids compares the two Doppler substrates:
// the Young–Beaulieu IDFT generator used by the paper and the classical
// sum-of-sinusoids simulator. The reported metrics are each method's worst
// deviation from the designed J0 autocorrelation over the first 40 lags, at
// matched sample budgets. The IDFT method is the more accurate per sample,
// which is why the paper builds on it.
func BenchmarkAblationIDFTvsSumOfSinusoids(b *testing.B) {
	const (
		fm      = 0.05
		m       = 2048
		maxLag  = 40
		rounds  = 6
		sosTone = 32
	)
	idftGen, err := doppler.NewGenerator(doppler.FilterSpec{M: m, NormalizedDoppler: fm}, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(211)

	var idftWorst, sosWorst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idftAcc := make([]float64, maxLag+1)
		sosAcc := make([]float64, maxLag+1)
		for r := 0; r < rounds; r++ {
			// IDFT block.
			blk := idftGen.Block(rng)
			rho, err := stats.LaggedAutocorrelation(blk, maxLag)
			if err != nil {
				b.Fatal(err)
			}
			// Independent sum-of-sinusoids realization of the same length.
			sos, err := doppler.NewSumOfSinusoids(fm, sosTone, 1, rng.Split())
			if err != nil {
				b.Fatal(err)
			}
			sosBlk, err := sos.Block(0, m)
			if err != nil {
				b.Fatal(err)
			}
			sosRho, err := stats.LaggedAutocorrelation(sosBlk, maxLag)
			if err != nil {
				b.Fatal(err)
			}
			for d := 0; d <= maxLag; d++ {
				idftAcc[d] += rho[d]
				sosAcc[d] += sosRho[d]
			}
		}
		idftWorst, sosWorst = 0, 0
		for d := 0; d <= maxLag; d++ {
			want := doppler.TheoreticalAutocorrelation(fm, d)
			if dev := math.Abs(idftAcc[d]/rounds - want); dev > idftWorst {
				idftWorst = dev
			}
			if dev := math.Abs(sosAcc[d]/rounds - want); dev > sosWorst {
				sosWorst = dev
			}
		}
	}
	b.ReportMetric(idftWorst, "autocorrDev_IDFT")
	b.ReportMetric(sosWorst, "autocorrDev_SoS")
}

// BenchmarkAblationFFTvsDirectAutocorrelation quantifies the O(M log M)
// Wiener–Khinchin autocorrelation against the O(M·L) direct estimator at the
// paper's block size; the validation pipeline relies on the FFT route.
func BenchmarkAblationFFTvsDirectAutocorrelation(b *testing.B) {
	rng := randx.New(223)
	x := rng.ComplexNormalVector(4096, 1)
	const maxLag = 100

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dsp.Autocorrelation(x, maxLag); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dsp.AutocorrelationFFT(x, maxLag); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkloadDiversityBER runs the diversity-receiver workload the
// paper's introduction motivates: BPSK with 2-branch MRC over branches whose
// correlation is set by the antenna spacing. The reported metric is the BER
// ratio between half-wavelength and two-wavelength spacing — the diversity
// loss caused by correlation, which only an accurate correlated-envelope
// generator can expose.
func BenchmarkWorkloadDiversityBER(b *testing.B) {
	const symbols = 30000
	covNear, err := (&corrmodel.SpatialModel{
		N: 2, SpacingWavelengths: 0.25, AngularSpread: math.Pi / 18, MeanAngle: 0, Power: 1,
	}).Covariance()
	if err != nil {
		b.Fatal(err)
	}
	covFar, err := (&corrmodel.SpatialModel{
		N: 2, SpacingWavelengths: 2, AngularSpread: math.Pi / 18, MeanAngle: 0, Power: 1,
	}).Covariance()
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		near, err := mimo.SimulateDiversityBER(mimo.DiversityConfig{
			BranchCovariance: covNear.Matrix, SNRdB: 10, Scheme: mimo.MaximalRatio, Symbols: symbols, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		far, err := mimo.SimulateDiversityBER(mimo.DiversityConfig{
			BranchCovariance: covFar.Matrix, SNRdB: 10, Scheme: mimo.MaximalRatio, Symbols: symbols, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if far.BER > 0 {
			ratio = near.BER / far.BER
		}
	}
	b.ReportMetric(ratio, "BER_ratio_corr_vs_uncorr")
}

// BenchmarkWorkloadAlamouti runs the 2×1 Alamouti space-time block code over
// correlated transmit fading and reports the BER penalty of a closely spaced
// array relative to independent antennas.
func BenchmarkWorkloadAlamouti(b *testing.B) {
	const symbols = 30000
	correlated := cmplxmat.MustFromRows([][]complex128{
		{1, 0.95},
		{0.95, 1},
	})
	var penalty float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		indep, err := mimo.SimulateAlamoutiBER(mimo.AlamoutiConfig{
			TxCovariance: cmplxmat.Identity(2), SNRdB: 10, Symbols: symbols, QuasiStatic: true, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		corr, err := mimo.SimulateAlamoutiBER(mimo.AlamoutiConfig{
			TxCovariance: correlated, SNRdB: 10, Symbols: symbols, QuasiStatic: true, Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if indep.BER > 0 {
			penalty = corr.BER / indep.BER
		}
	}
	b.ReportMetric(penalty, "BER_penalty_correlated_array")
}

// BenchmarkWorkloadOFDMLink runs the QPSK-over-OFDM link with correlated
// subcarrier fading and reports the measured SER against the closed-form
// flat-Rayleigh value (the per-subcarrier marginal is unaffected by the
// correlation, so the ratio should hover around one).
func BenchmarkWorkloadOFDMLink(b *testing.B) {
	fading, err := ofdm.NewSubcarrierFading(ofdm.SubcarrierFadingConfig{
		Subcarriers:         16,
		SubcarrierSpacingHz: 15e3,
		MaxDopplerHz:        50,
		RMSDelaySpread:      1e-6,
		Seed:                5,
	})
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ofdm.SimulateLink(ofdm.TransceiverConfig{
			Fading: fading, SNRdB: 15, OFDMSymbols: 2000, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.SER / ofdm.TheoreticalQPSKRayleighSER(15)
	}
	b.ReportMetric(ratio, "SER_vs_theory_ratio")
}

// BenchmarkEigenDecompositionScaling measures the Hermitian eigendecomposition
// cost as the number of envelopes grows — the setup cost a user pays once per
// covariance matrix.
func BenchmarkEigenDecompositionScaling(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		model := &corrmodel.ExponentialModel{N: n, Rho: 0.8, PhaseRad: 0.3, Power: 1}
		res, err := model.Covariance()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cmplxmat.EigenHermitian(res.Matrix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return "N" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
