package rayleigh

import "repro/internal/chanspec"

// Fading model names accepted by Config.Fading, PowersConfig.Fading and
// RealTimeConfig.Fading: the paper's correlated Rayleigh (the default, empty
// string included) and the composite models of the channel-model zoo. Every
// model rides the same correlated complex-Gaussian engine and inherits its
// determinism contract: a seeded run is bit-identical for every worker count,
// and block k of a real-time stream is a pure function of the configuration
// and k. Each model's math, parameters and statistical gates are catalogued in
// docs/models.md and by Models.
const (
	// FadingRayleigh is the paper's correlated Rayleigh fading (the default):
	// the envelope is the magnitude of the colored complex Gaussian.
	FadingRayleigh = chanspec.FadingRayleigh
	// FadingRician adds a fixed line-of-sight component after coloring, giving
	// a Rician envelope with K-factor FadingParams.KFactor while the scattered
	// part keeps the target spatial correlation.
	FadingRician = chanspec.FadingRician
	// FadingNakagamiM maps each Rayleigh envelope onto a Nakagami-m envelope
	// of the same mean power through the exact probability-integral transform,
	// preserving the sample phase.
	FadingNakagamiM = chanspec.FadingNakagamiM
	// FadingSuzuki multiplies the Rayleigh envelope by correlated lognormal
	// shadowing with coherence length FadingParams.ShadowCoherence samples.
	FadingSuzuki = chanspec.FadingSuzuki
	// FadingNonstationaryDoppler keeps the Rayleigh envelope but replans the
	// Doppler spectrum per segment of a piecewise velocity trajectory
	// (FadingParams.Segments). Real-time block modes only: snapshots have no
	// time axis, so New and NewFromPowers reject it.
	FadingNonstationaryDoppler = chanspec.FadingNonstationaryDoppler
)

// DefaultShadowCoherence is the Suzuki shadowing knot spacing, in samples,
// when FadingParams.ShadowCoherence is zero.
const DefaultShadowCoherence = chanspec.DefaultShadowCoherence

// DopplerSegment is one leg of a nonstationary-Doppler velocity trajectory:
// Blocks consecutive blocks generated with the given normalized maximum
// Doppler shift. The final segment persists for every block past the end of
// the trajectory.
type DopplerSegment struct {
	// Blocks is the segment length in blocks; it must be positive.
	Blocks int
	// NormalizedDoppler is the segment's fm = Fm/Fs, in (0, 0.5).
	NormalizedDoppler float64
}

// FadingParams carries the per-model parameters of the Fading configuration
// fields. Each fading model reads only its own fields; the rest may stay zero.
type FadingParams struct {
	// KFactor is the Rician K-factor (LOS power / scattered power), ≥ 0.
	// Read by FadingRician; K = 0 degenerates to Rayleigh.
	KFactor float64
	// LOSPhaseRad is the phase of the Rician LOS component (default 0).
	LOSPhaseRad float64
	// M is the Nakagami shape parameter, m ≥ 0.5. Read by FadingNakagamiM;
	// m = 1 is exactly Rayleigh.
	M float64
	// ShadowSigmaDB is the Suzuki lognormal shadowing standard deviation in
	// dB, > 0. Read by FadingSuzuki.
	ShadowSigmaDB float64
	// ShadowCoherence is the Suzuki shadowing coherence length in samples;
	// zero selects DefaultShadowCoherence.
	ShadowCoherence int
	// Segments is the nonstationary-Doppler velocity trajectory. Read by
	// FadingNonstationaryDoppler; at least one segment is required.
	Segments []DopplerSegment
}

// FadingModelInfo describes one fading model of the zoo.
type FadingModelInfo struct {
	// Name is the Fading configuration value ("rayleigh", "rician", …).
	Name string
	// Title is the human-readable model name.
	Title string
	// Envelope names the marginal envelope distribution the model produces.
	Envelope string
	// Params documents the FadingParams fields the model reads.
	Params string
	// Constraints summarizes where the model is available and what its
	// parameters must satisfy.
	Constraints string
	// Notes records composition details and caveats (empty when none).
	Notes string
}

// Models returns the catalog of fading models, the Rayleigh default first.
// It is the public mirror of the fadingd /v1/models endpoint.
func Models() []FadingModelInfo {
	infos := chanspec.FadingModels()
	out := make([]FadingModelInfo, len(infos))
	for i, m := range infos {
		out[i] = FadingModelInfo{
			Name:        m.Name,
			Title:       m.Title,
			Envelope:    m.Envelope,
			Params:      m.Params,
			Constraints: m.Constraints,
			Notes:       m.Notes,
		}
	}
	return out
}

// fadingSpecParams converts public fading parameters to the spec form shared
// with scenario files and the fadingd service.
func fadingSpecParams(p *FadingParams) *chanspec.FadingParams {
	if p == nil {
		return nil
	}
	out := &chanspec.FadingParams{
		KFactor:         p.KFactor,
		LOSPhaseRad:     p.LOSPhaseRad,
		M:               p.M,
		ShadowSigmaDB:   p.ShadowSigmaDB,
		ShadowCoherence: p.ShadowCoherence,
	}
	if len(p.Segments) > 0 {
		out.Segments = make([]chanspec.DopplerSegment, len(p.Segments))
		for i, s := range p.Segments {
			out.Segments[i] = chanspec.DopplerSegment{Blocks: s.Blocks, NormalizedDoppler: s.NormalizedDoppler}
		}
	}
	return out
}
