// Quickstart: generate three correlated Rayleigh fading envelopes from an
// explicit covariance matrix and verify their first-order statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	rayleigh "repro"
)

func main() {
	log.SetFlags(0)

	// Desired covariance matrix of the underlying complex Gaussian processes.
	// It is the paper's Eq. (22) example: three envelopes observed at
	// carriers 200 kHz apart with millisecond arrival delays.
	covariance := [][]complex128{
		{1, 0.3782 + 0.4753i, 0.0878 + 0.2207i},
		{0.3782 - 0.4753i, 1, 0.3063 + 0.3849i},
		{0.0878 - 0.2207i, 0.3063 - 0.3849i, 1},
	}

	gen, err := rayleigh.New(rayleigh.Config{Covariance: covariance, Seed: 42})
	if err != nil {
		log.Fatalf("building generator: %v", err)
	}

	// Draw a handful of snapshots and show the envelopes.
	fmt.Println("First five snapshots (Rayleigh envelopes):")
	for i := 0; i < 5; i++ {
		s := gen.Snapshot()
		fmt.Printf("  #%d: r1=%.3f  r2=%.3f  r3=%.3f\n", i+1, s.Envelopes[0], s.Envelopes[1], s.Envelopes[2])
	}

	// Verify the envelope statistics against the paper's Eq. (14)-(15) by
	// averaging over many independent snapshots.
	const draws = 100000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		r := gen.Snapshot().Envelopes[0]
		sum += r
		sumSq += r * r
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	wantMean, _ := rayleigh.ExpectedEnvelopeMean(1)
	wantVar, _ := rayleigh.GaussianPowerToEnvelopeVariance(1)

	fmt.Printf("\nEnvelope statistics over %d snapshots (unit Gaussian power):\n", draws)
	fmt.Printf("  mean     = %.4f   (Eq. 14 predicts %.4f)\n", mean, wantMean)
	fmt.Printf("  variance = %.4f   (Eq. 15 predicts %.4f)\n", variance, wantVar)

	if math.Abs(mean-wantMean) > 0.02 || math.Abs(variance-wantVar) > 0.02 {
		log.Fatal("envelope statistics deviate from the Rayleigh relations")
	}
	fmt.Println("\nStatistics match the Rayleigh relations of the paper.")
}
