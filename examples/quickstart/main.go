// Quickstart: generate three correlated Rayleigh fading envelopes from an
// explicit covariance matrix and verify their first-order statistics.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The program doubles as a smoke check: it exits non-zero when the measured
// statistics deviate from the paper's relations, and CI runs it on every
// pull request (with a reduced -draws) so the public API in this example can
// never silently rot.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	rayleigh "repro"
)

func main() {
	log.SetFlags(0)
	draws := flag.Int("draws", 100000, "snapshots averaged for the statistical checks")
	flag.Parse()
	if *draws < 1000 {
		log.Fatalf("need at least 1000 draws for meaningful statistics, got %d", *draws)
	}

	// Desired covariance matrix of the underlying complex Gaussian processes.
	// It is the paper's Eq. (22) example: three envelopes observed at
	// carriers 200 kHz apart with millisecond arrival delays.
	covariance := [][]complex128{
		{1, 0.3782 + 0.4753i, 0.0878 + 0.2207i},
		{0.3782 - 0.4753i, 1, 0.3063 + 0.3849i},
		{0.0878 - 0.2207i, 0.3063 - 0.3849i, 1},
	}

	gen, err := rayleigh.New(rayleigh.Config{Covariance: covariance, Seed: 42, Parallel: 4})
	if err != nil {
		log.Fatalf("building generator: %v", err)
	}

	// Draw a handful of snapshots and show the envelopes.
	fmt.Println("First five snapshots (Rayleigh envelopes):")
	for i := 0; i < 5; i++ {
		s := gen.Snapshot()
		fmt.Printf("  #%d: r1=%.3f  r2=%.3f  r3=%.3f\n", i+1, s.Envelopes[0], s.Envelopes[1], s.Envelopes[2])
	}

	// Verify the envelope statistics against the paper's Eq. (14)-(15), and
	// the cross-correlation of the first Gaussian pair against the requested
	// covariance, by averaging over many independent snapshots. The batched
	// SnapshotsInto path reuses one pre-shaped buffer per chunk — the
	// steady-state generation loop of a long-running simulation.
	var sum, sumSq, p0, p1 float64
	var cross complex128
	batch := make([]rayleigh.Snapshot, 2048)
	for done := 0; done < *draws; {
		chunk := batch
		if rem := *draws - done; rem < len(chunk) {
			chunk = chunk[:rem]
		}
		if err := gen.SnapshotsInto(chunk); err != nil {
			log.Fatalf("generating snapshots: %v", err)
		}
		for _, s := range chunk {
			r := s.Envelopes[0]
			sum += r
			sumSq += r * r
			z0, z1 := s.Gaussian[0], s.Gaussian[1]
			cross += z0 * cmplx.Conj(z1)
			p0 += real(z0)*real(z0) + imag(z0)*imag(z0)
			p1 += real(z1)*real(z1) + imag(z1)*imag(z1)
		}
		done += len(chunk)
	}
	n := float64(*draws)
	mean := sum / n
	variance := sumSq/n - mean*mean
	rho01 := cross / complex(math.Sqrt(p0*p1), 0)
	wantMean, _ := rayleigh.ExpectedEnvelopeMean(1)
	wantVar, _ := rayleigh.GaussianPowerToEnvelopeVariance(1)
	wantRho := covariance[0][1]

	fmt.Printf("\nStatistics over %d snapshots (unit Gaussian power):\n", *draws)
	fmt.Printf("  envelope mean      = %.4f   (Eq. 14 predicts %.4f)\n", mean, wantMean)
	fmt.Printf("  envelope variance  = %.4f   (Eq. 15 predicts %.4f)\n", variance, wantVar)
	fmt.Printf("  corr(z1, z2)       = %.4f%+.4fi   (requested %.4f%+.4fi)\n",
		real(rho01), imag(rho01), real(wantRho), imag(wantRho))

	if math.Abs(mean-wantMean) > 0.02 || math.Abs(variance-wantVar) > 0.02 {
		log.Fatal("envelope statistics deviate from the Rayleigh relations")
	}
	if cmplx.Abs(rho01-wantRho) > 0.03 {
		log.Fatal("cross-correlation deviates from the requested covariance")
	}
	fmt.Println("\nStatistics match the paper's relations.")
}
