// Real-time generation with Doppler spectrum shaping: reproduce the setup of
// the paper's Fig. 4(a) — three frequency-correlated Rayleigh envelopes whose
// samples are also correlated in time through the Jakes autocorrelation —
// and verify both properties on the generated block.
//
// Run with:
//
//	go run ./examples/doppler-realtime
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	rayleigh "repro"
)

func main() {
	log.SetFlags(0)

	cov, err := rayleigh.SpectralCovariance(rayleigh.SpectralConfig{
		Frequencies:    []float64{400e3, 200e3, 0},
		Delays:         [][]float64{{0, 1e-3, 4e-3}, {1e-3, 0, 3e-3}, {4e-3, 3e-3, 0}},
		MaxDopplerHz:   50,
		RMSDelaySpread: 1e-6,
	})
	if err != nil {
		log.Fatalf("building covariance: %v", err)
	}

	// Paper parameters: M = 4096 IDFT points, fm = Fm/Fs = 50 Hz / 1 kHz.
	// Stream is the concurrent, random-access face of the real-time engine:
	// block i is a pure function of the configuration, so any number of
	// cursors can serve the same deterministic sequence.
	stream, err := rayleigh.NewStream(rayleigh.RealTimeConfig{
		Covariance:        cov,
		IDFTPoints:        4096,
		NormalizedDoppler: 0.05,
		Seed:              3,
	})
	if err != nil {
		log.Fatalf("building real-time stream: %v", err)
	}
	cursor, err := stream.NewCursor()
	if err != nil {
		log.Fatalf("opening cursor: %v", err)
	}
	var block rayleigh.Block
	if err := cursor.Next(&block); err != nil {
		log.Fatalf("generating block: %v", err)
	}

	// 1. Envelope trace in dB around RMS, as plotted in Fig. 4(a).
	fmt.Println("First 100 samples of envelope 1 (dB around RMS), cf. Fig. 4(a):")
	var rms float64
	for _, r := range block.Envelopes[0] {
		rms += r * r
	}
	rms = math.Sqrt(rms / float64(len(block.Envelopes[0])))
	for l := 0; l < 100; l += 10 {
		fmt.Printf("  sample %3d: %7.2f dB\n", l, 20*math.Log10(block.Envelopes[0][l]/rms))
	}

	// 2. Temporal autocorrelation of one envelope versus the designed
	//    J0(2π·fm·d).
	fmt.Println("\nTemporal autocorrelation of envelope 1 vs the Jakes model:")
	fmt.Printf("%6s %12s %12s\n", "lag", "measured", "J0(2*pi*fm*d)")
	series := block.Gaussian[0]
	var power float64
	for _, z := range series {
		power += real(z)*real(z) + imag(z)*imag(z)
	}
	for _, lag := range []int{0, 5, 10, 15, 20, 30, 40} {
		var sum complex128
		for l := 0; l+lag < len(series); l++ {
			sum += series[l+lag] * cmplx.Conj(series[l])
		}
		measured := real(sum) / power
		fmt.Printf("%6d %12.4f %12.4f\n", lag, measured, stream.TheoreticalAutocorrelation(lag))
	}

	// 3. Cross-envelope covariance of the block versus the design target.
	fmt.Println("\nTime-averaged covariance of the block vs the design target:")
	n := stream.N()
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum complex128
			for l := range block.Gaussian[i] {
				sum += block.Gaussian[i][l] * cmplx.Conj(block.Gaussian[j][l])
			}
			got := sum / complex(float64(len(block.Gaussian[i])), 0)
			if d := cmplx.Abs(got - cov[i][j]); d > worst {
				worst = d
			}
			fmt.Printf("  K(%d,%d): measured %7.3f%+7.3fi   target %7.3f%+7.3fi\n",
				i+1, j+1, real(got), imag(got), real(cov[i][j]), imag(cov[i][j]))
		}
	}
	fmt.Printf("\nWorst covariance deviation within one block: %.3f\n", worst)
	fmt.Println("(Single-block estimates carry Monte-Carlo noise; averaging blocks tightens them.)")
}
