// MIMO spatial correlation: build the paper's Eq. (23) covariance matrix for
// a three-element transmit array, draw correlated channel vectors, and show
// how antenna spacing controls the correlation between array elements.
//
// Run with:
//
//	go run ./examples/mimo-spatial
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	rayleigh "repro"
)

func main() {
	log.SetFlags(0)

	// Section 6 of the paper: D/λ = 1, angular spread Δ = 10°, broadside
	// arrival (Φ = 0).
	cov, err := rayleigh.SpatialCovariance(rayleigh.SpatialConfig{
		Antennas:           3,
		SpacingWavelengths: 1,
		AngularSpreadRad:   math.Pi / 18,
		MeanAngleRad:       0,
	})
	if err != nil {
		log.Fatalf("building spatial covariance: %v", err)
	}

	fmt.Println("Desired covariance matrix (the paper's Eq. 23):")
	for _, row := range cov {
		for _, v := range row {
			fmt.Printf("  %7.4f", real(v))
		}
		fmt.Println()
	}

	gen, err := rayleigh.New(rayleigh.Config{Covariance: cov, Seed: 11})
	if err != nil {
		log.Fatalf("building generator: %v", err)
	}

	// Estimate the correlation coefficient between adjacent and outer antenna
	// pairs from the generated channel vectors, drawn through the batched
	// SnapshotsInto path with one reused buffer.
	const draws = 150000
	var c01, c02 complex128
	var p0, p1, p2 float64
	batch := make([]rayleigh.Snapshot, 4096)
	for done := 0; done < draws; {
		chunk := batch
		if rem := draws - done; rem < len(chunk) {
			chunk = chunk[:rem]
		}
		if err := gen.SnapshotsInto(chunk); err != nil {
			log.Fatalf("generating snapshots: %v", err)
		}
		for _, s := range chunk {
			c01 += s.Gaussian[0] * cmplx.Conj(s.Gaussian[1])
			c02 += s.Gaussian[0] * cmplx.Conj(s.Gaussian[2])
			p0 += real(s.Gaussian[0] * cmplx.Conj(s.Gaussian[0]))
			p1 += real(s.Gaussian[1] * cmplx.Conj(s.Gaussian[1]))
			p2 += real(s.Gaussian[2] * cmplx.Conj(s.Gaussian[2]))
		}
		done += len(chunk)
	}
	rho01 := cmplx.Abs(c01) / math.Sqrt(p0*p1)
	rho02 := cmplx.Abs(c02) / math.Sqrt(p0*p2)
	fmt.Printf("\nMeasured |correlation| between antennas 1-2: %.4f (design %.4f)\n", rho01, cmplx.Abs(cov[0][1]))
	fmt.Printf("Measured |correlation| between antennas 1-3: %.4f (design %.4f)\n", rho02, cmplx.Abs(cov[0][2]))

	// Sweep the antenna spacing to show how the designer trades array size
	// against decorrelation — the reason MIMO systems care about this model.
	fmt.Println("\nAdjacent-antenna correlation versus spacing (Δ = 10°, Φ = 0):")
	fmt.Printf("%12s %14s\n", "D/lambda", "|rho(1,2)|")
	for _, spacing := range []float64{0.25, 0.5, 1, 2, 4} {
		c, err := rayleigh.SpatialCovariance(rayleigh.SpatialConfig{
			Antennas:           2,
			SpacingWavelengths: spacing,
			AngularSpreadRad:   math.Pi / 18,
			MeanAngleRad:       0,
		})
		if err != nil {
			log.Fatalf("spacing %g: %v", spacing, err)
		}
		fmt.Printf("%12.2f %14.4f\n", spacing, cmplx.Abs(c[0][1]))
	}
}
