// OFDM spectral correlation: build the paper's Eq. (22) covariance matrix
// from physical parameters (carrier spacing, Doppler, delay spread, arrival
// delays), generate correlated subcarrier fades with the public API, and
// check how the correlation decays across subcarriers.
//
// Run with:
//
//	go run ./examples/ofdm-spectral
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	rayleigh "repro"
)

func main() {
	log.SetFlags(0)

	// Section 6 of the paper: three carriers 200 kHz apart (GSM 900 spacing),
	// Fm = 50 Hz, RMS delay spread 1 µs, arrival delays of 1/3/4 ms.
	cov, err := rayleigh.SpectralCovariance(rayleigh.SpectralConfig{
		Frequencies:    []float64{400e3, 200e3, 0},
		Delays:         [][]float64{{0, 1e-3, 4e-3}, {1e-3, 0, 3e-3}, {4e-3, 3e-3, 0}},
		MaxDopplerHz:   50,
		RMSDelaySpread: 1e-6,
		Power:          1,
	})
	if err != nil {
		log.Fatalf("building spectral covariance: %v", err)
	}

	fmt.Println("Desired covariance matrix (the paper's Eq. 22):")
	for _, row := range cov {
		for _, v := range row {
			fmt.Printf("  %7.4f%+7.4fi", real(v), imag(v))
		}
		fmt.Println()
	}

	gen, err := rayleigh.New(rayleigh.Config{Covariance: cov, Seed: 7})
	if err != nil {
		log.Fatalf("building generator: %v", err)
	}

	// Estimate the cross-correlation between subcarrier fades from the
	// generated snapshots and compare with the design target. Generation runs
	// through the batched SnapshotsInto path, reusing one pre-shaped buffer.
	const draws = 200000
	n := gen.N()
	est := make([][]complex128, n)
	for i := range est {
		est[i] = make([]complex128, n)
	}
	batch := make([]rayleigh.Snapshot, 4096)
	for done := 0; done < draws; {
		chunk := batch
		if rem := draws - done; rem < len(chunk) {
			chunk = chunk[:rem]
		}
		if err := gen.SnapshotsInto(chunk); err != nil {
			log.Fatalf("generating snapshots: %v", err)
		}
		for _, s := range chunk {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					est[i][j] += s.Gaussian[i] * cmplx.Conj(s.Gaussian[j]) / draws
				}
			}
		}
		done += len(chunk)
	}

	fmt.Println("\nSample covariance of the generated subcarrier fades:")
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			fmt.Printf("  %7.4f%+7.4fi", real(est[i][j]), imag(est[i][j]))
			if d := cmplx.Abs(est[i][j] - cov[i][j]); d > worst {
				worst = d
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nWorst deviation from the design target: %.4f\n", worst)
	if worst > 0.03 {
		log.Fatal("generated fades do not follow the desired spectral correlation")
	}
	fmt.Println("Generated subcarrier fades follow the desired spectral correlation.")
}
