package rayleigh

import (
	"errors"
	"math"
	"testing"
)

// Tests for the public streaming APIs: SnapshotsInto/BlockInto/BlocksInto must
// be deterministic across worker counts, reuse caller storage, and keep the
// steady-state hot path off the heap.

// exponentialCovarianceRows builds the n×n exponential correlation matrix
// K[i][j] = rho^|i-j| — a standard positive definite test target that scales
// to any N.
func exponentialCovarianceRows(n int, rho float64) [][]complex128 {
	rows := make([][]complex128, n)
	for i := range rows {
		rows[i] = make([]complex128, n)
		for j := range rows[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			rows[i][j] = complex(math.Pow(rho, float64(d)), 0)
		}
	}
	return rows
}

func newIntoGenerator(t *testing.T, parallel int) *Generator {
	t.Helper()
	g, err := New(Config{Covariance: exponentialCovarianceRows(5, 0.6), Seed: 501, Parallel: parallel})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestSnapshotsIntoWorkerCountInvariance(t *testing.T) {
	const count = 200 // several chunks plus a ragged tail
	var want []Snapshot
	for _, parallel := range []int{0, 1, 3, 8} {
		g := newIntoGenerator(t, parallel)
		dst := make([]Snapshot, count)
		if err := g.SnapshotsInto(dst); err != nil {
			t.Fatalf("SnapshotsInto(Parallel=%d): %v", parallel, err)
		}
		if want == nil {
			want = dst
			continue
		}
		for i := range dst {
			for j := range dst[i].Gaussian {
				if dst[i].Gaussian[j] != want[i].Gaussian[j] || dst[i].Envelopes[j] != want[i].Envelopes[j] {
					t.Fatalf("Parallel=%d snapshot %d envelope %d differs from sequential run", parallel, i, j)
				}
			}
		}
	}
}

func TestSnapshotsIntoReusesStorage(t *testing.T) {
	g := newIntoGenerator(t, 1)
	dst := make([]Snapshot, 16)
	for i := range dst {
		dst[i].Gaussian = make([]complex128, g.N())
		dst[i].Envelopes = make([]float64, g.N())
	}
	before := make([]*complex128, len(dst))
	for i := range dst {
		before[i] = &dst[i].Gaussian[0]
	}
	if err := g.SnapshotsInto(dst); err != nil {
		t.Fatalf("SnapshotsInto: %v", err)
	}
	for i := range dst {
		if &dst[i].Gaussian[0] != before[i] {
			t.Errorf("snapshot %d storage was reallocated despite correct shape", i)
		}
	}
	if err := g.SnapshotsInto(nil); err == nil {
		t.Error("empty destination: want error, got nil")
	}
}

func TestSnapshotsIntoAmortizedAllocations(t *testing.T) {
	g := newIntoGenerator(t, 1)
	const count = 256
	dst := make([]Snapshot, count)
	if err := g.SnapshotsInto(dst); err != nil { // shape the storage once
		t.Fatalf("SnapshotsInto: %v", err)
	}
	perRun := testing.AllocsPerRun(20, func() {
		if err := g.SnapshotsInto(dst); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state allocates only the per-chunk stream derivations: a handful
	// of allocations per 64-snapshot chunk, far below one per snapshot.
	if perSnapshot := perRun / count; perSnapshot > 0.5 {
		t.Errorf("SnapshotsInto allocates %.2f per snapshot (%.0f per %d-snapshot run)", perSnapshot, perRun, count)
	}
}

func newIntoRealTime(t *testing.T, m, parallel int) *RealTime {
	t.Helper()
	r, err := NewRealTime(RealTimeConfig{
		Covariance:        exponentialCovarianceRows(4, 0.5),
		IDFTPoints:        m,
		NormalizedDoppler: 0.05,
		Seed:              503,
		Parallel:          parallel,
	})
	if err != nil {
		t.Fatalf("NewRealTime: %v", err)
	}
	return r
}

func TestBlockIntoMatchesBlock(t *testing.T) {
	r1 := newIntoRealTime(t, 512, 0)
	r2 := newIntoRealTime(t, 512, 0)
	var into Block
	for i := 0; i < 3; i++ {
		want := r1.Block()
		if err := r2.BlockInto(&into); err != nil {
			t.Fatalf("BlockInto: %v", err)
		}
		for j := range want.Gaussian {
			for l := range want.Gaussian[j] {
				if into.Gaussian[j][l] != want.Gaussian[j][l] || into.Envelopes[j][l] != want.Envelopes[j][l] {
					t.Fatalf("block %d: BlockInto differs from Block at (%d,%d)", i, j, l)
				}
			}
		}
	}
	if err := r2.BlockInto(nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil block: err = %v", err)
	}
}

func TestBlockIntoDoesNotAllocate(t *testing.T) {
	r := newIntoRealTime(t, 512, 0)
	var b Block
	if err := r.BlockInto(&b); err != nil { // shape the storage once
		t.Fatalf("BlockInto: %v", err)
	}
	if n := testing.AllocsPerRun(10, func() {
		if err := r.BlockInto(&b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("BlockInto allocates %v per run", n)
	}
}

func TestBlocksIntoWorkerCountInvariance(t *testing.T) {
	const count = 6
	var want []*Block
	for _, parallel := range []int{0, 2, 4} {
		r := newIntoRealTime(t, 512, parallel)
		dst := make([]*Block, count) // nil entries: BlocksInto allocates them
		if err := r.BlocksInto(dst); err != nil {
			t.Fatalf("BlocksInto(Parallel=%d): %v", parallel, err)
		}
		if want == nil {
			want = dst
			continue
		}
		for i := range dst {
			for j := range dst[i].Gaussian {
				for l := range dst[i].Gaussian[j] {
					if dst[i].Gaussian[j][l] != want[i].Gaussian[j][l] ||
						dst[i].Envelopes[j][l] != want[i].Envelopes[j][l] {
						t.Fatalf("Parallel=%d block %d differs from sequential run at (%d,%d)", parallel, i, j, l)
					}
				}
			}
		}
	}
	r := newIntoRealTime(t, 512, 2)
	if err := r.BlocksInto(nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("empty destination: err = %v", err)
	}
}
