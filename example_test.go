package rayleigh_test

import (
	"errors"
	"fmt"
	"math"

	rayleigh "repro"
)

// ExampleNew generates correlated Rayleigh envelopes from an explicit
// covariance matrix and verifies the envelope statistics against the paper's
// Eq. (14)–(15).
func ExampleNew() {
	covariance := [][]complex128{
		{1, 0.3782 + 0.4753i, 0.0878 + 0.2207i},
		{0.3782 - 0.4753i, 1, 0.3063 + 0.3849i},
		{0.0878 - 0.2207i, 0.3063 - 0.3849i, 1},
	}
	gen, err := rayleigh.New(rayleigh.Config{Covariance: covariance, Seed: 42})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	var sum float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		sum += gen.Snapshot().Envelopes[0]
	}
	mean := sum / draws
	want, _ := rayleigh.ExpectedEnvelopeMean(1)

	fmt.Println("envelopes per snapshot:", gen.N())
	fmt.Println("mean within 2% of Eq. (14):", math.Abs(mean-want)/want < 0.02)
	// Output:
	// envelopes per snapshot: 3
	// mean within 2% of Eq. (14): true
}

// ExampleGenerator_SnapshotsInto is the steady-state generation loop of a
// long-running simulation: one pre-shaped batch buffer, reused every call,
// with the chunks colored by a single matrix-matrix product each.
func ExampleGenerator_SnapshotsInto() {
	gen, err := rayleigh.New(rayleigh.Config{
		Covariance: [][]complex128{{1, 0.7}, {0.7, 1}},
		Seed:       7,
		Parallel:   2, // seeded output is bit-identical for every worker count
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	batch := make([]rayleigh.Snapshot, 4096)
	positive := true
	for round := 0; round < 4; round++ {
		if err := gen.SnapshotsInto(batch); err != nil {
			fmt.Println("error:", err)
			return
		}
		for _, s := range batch {
			positive = positive && s.Envelopes[0] > 0 && s.Envelopes[1] > 0
		}
	}
	fmt.Println("snapshots per batch:", len(batch))
	fmt.Println("all envelopes positive:", positive)
	// Output:
	// snapshots per batch: 4096
	// all envelopes positive: true
}

// ExampleStream_cursor shows the concurrent real-time entry point: a Stream
// is immutable and random-access, so a cursor can seek to any block index
// and reproduce exactly what a from-0 consumer saw there — the mechanism
// behind fadingd's resumable sessions.
func ExampleStream_cursor() {
	stream, err := rayleigh.NewStream(rayleigh.RealTimeConfig{
		Covariance:        [][]complex128{{1, 0.8}, {0.8, 1}},
		IDFTPoints:        512,
		NormalizedDoppler: 0.05,
		Seed:              3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// One cursor walks blocks 0..2 sequentially…
	walk, _ := stream.NewCursor()
	var b0, b1, b2 rayleigh.Block
	walk.Next(&b0)
	walk.Next(&b1)
	walk.Next(&b2)

	// …and an independent cursor seeks straight to block 2.
	seek, _ := stream.NewCursor()
	seek.Seek(2)
	var resumed rayleigh.Block
	seek.Next(&resumed)

	identical := true
	for j := range resumed.Gaussian {
		for l := range resumed.Gaussian[j] {
			identical = identical && resumed.Gaussian[j][l] == b2.Gaussian[j][l]
		}
	}
	fmt.Println("samples per block:", stream.BlockLength())
	fmt.Println("resumed block identical:", identical)
	// Output:
	// samples per block: 512
	// resumed block identical: true
}

// ExampleConfig_method selects generation backends by name: the paper's
// generalized engine is the default, and each conventional method keeps its
// documented constraints — requesting a configuration outside a method's
// vocabulary fails with a typed error.
func ExampleConfig_method() {
	pair := [][]complex128{{1, 0.6}, {0.6, 1}}

	gen, err := rayleigh.New(rayleigh.Config{
		Covariance: pair,
		Seed:       9,
		Method:     rayleigh.MethodErtelReed, // two-branch construction of [2]
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("backend:", gen.Method())

	// Ertel–Reed cannot express three envelopes.
	_, err = rayleigh.NewWithMethod(rayleigh.MethodErtelReed, rayleigh.Config{
		Covariance: [][]complex128{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		Seed:       9,
	})
	fmt.Println("N=3 unsupported:", errors.Is(err, rayleigh.ErrMethodUnsupported))

	// Cholesky coloring rejects indefinite targets the generalized engine
	// clamps.
	indefinite := [][]complex128{{1, 0.9, -0.9}, {0.9, 1, 0.9}, {-0.9, 0.9, 1}}
	_, err = rayleigh.NewWithMethod(rayleigh.MethodBeaulieuMerani, rayleigh.Config{Covariance: indefinite, Seed: 9})
	fmt.Println("non-PSD rejected:", errors.Is(err, rayleigh.ErrMethodSetup))
	// Output:
	// backend: ertel_reed
	// N=3 unsupported: true
	// non-PSD rejected: true
}

// ExampleMethods lists the generation-backend catalog — the same vocabulary
// scenario files and fadingd session specs accept.
func ExampleMethods() {
	for _, m := range rayleigh.Methods() {
		fmt.Println(m.Name)
	}
	// Output:
	// generalized
	// salz_winters
	// ertel_reed
	// beaulieu_merani
	// natarajan
	// sorooshyari_daut
}

// ExampleConfig_fading selects a fading model from the channel-model zoo:
// the same covariance target and seed, realized as Rician fading with a
// K-factor of 4. The line-of-sight component is added after coloring, so
// the scattered part keeps the target correlation and the mean power stays
// on the covariance diagonal (see docs/models.md).
func ExampleConfig_fading() {
	gen, err := rayleigh.New(rayleigh.Config{
		Covariance: [][]complex128{{1, 0.6}, {0.6, 1}},
		Seed:       11,
		Fading:     rayleigh.FadingRician,
		FadingParams: &rayleigh.FadingParams{
			KFactor:     4,
			LOSPhaseRad: 0.5,
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// The moment estimator recovers the K-factor: K = |mean|²/(E|z|²−|mean|²).
	var mean complex128
	var power float64
	const draws = 40000
	for i := 0; i < draws; i++ {
		z := gen.Snapshot().Gaussian[0]
		mean += z
		power += real(z)*real(z) + imag(z)*imag(z)
	}
	mean /= draws
	power /= draws
	los := real(mean)*real(mean) + imag(mean)*imag(mean)
	k := los / (power - los)

	fmt.Println("mean power within 2% of target:", math.Abs(power-1) < 0.02)
	fmt.Println("K estimate within 10% of 4:", math.Abs(k-4)/4 < 0.1)
	// Output:
	// mean power within 2% of target: true
	// K estimate within 10% of 4: true
}

// ExampleStream_nonstationaryDoppler drives a real-time stream through a
// piecewise Doppler-velocity trajectory: the first three blocks are
// generated at fm = 0.02, the rest at fm = 0.1, each segment carrying its
// own Jakes autocorrelation. Blocks stay pure functions of (spec, seed, k),
// so a cursor seeking straight into the second segment reproduces exactly
// what a from-0 consumer saw there.
func ExampleStream_nonstationaryDoppler() {
	stream, err := rayleigh.NewStream(rayleigh.RealTimeConfig{
		Covariance: [][]complex128{{1}},
		IDFTPoints: 512,
		Seed:       21,
		Fading:     rayleigh.FadingNonstationaryDoppler,
		FadingParams: &rayleigh.FadingParams{
			Segments: []rayleigh.DopplerSegment{
				{Blocks: 3, NormalizedDoppler: 0.02},
				{Blocks: 3, NormalizedDoppler: 0.1}, // persists past the end
			},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// The Jakes model in effect changes at the block-3 segment seam.
	fmt.Println("same model within a segment:",
		stream.TheoreticalAutocorrelationAt(0, 40) == stream.TheoreticalAutocorrelationAt(2, 40))
	fmt.Println("model changes across the seam:",
		stream.TheoreticalAutocorrelationAt(2, 40) != stream.TheoreticalAutocorrelationAt(3, 40))

	// Sequential walk to block 4 (second segment)…
	walk, _ := stream.NewCursor()
	var b rayleigh.Block
	for i := 0; i < 5; i++ {
		walk.Next(&b)
	}
	// …and a direct seek to block 4 produce identical bytes.
	seek, _ := stream.NewCursor()
	seek.Seek(4)
	var resumed rayleigh.Block
	seek.Next(&resumed)

	identical := true
	for l := range b.Gaussian[0] {
		identical = identical && b.Gaussian[0][l] == resumed.Gaussian[0][l]
	}
	fmt.Println("mid-trajectory seek identical:", identical)
	// Output:
	// same model within a segment: true
	// model changes across the seam: true
	// mid-trajectory seek identical: true
}
