package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repWith(pairs ...any) report {
	var rep report
	for i := 0; i < len(pairs); i += 2 {
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return rep
}

func TestCompareReportsWithinTolerance(t *testing.T) {
	baseline := repWith("a", 100.0, "b", 200.0)
	current := repWith("a", 120.0, "b", 150.0, "new", 999.0)
	comparisons, ok := compareReports(baseline, current, 0.25)
	if !ok {
		t.Fatalf("gate failed within tolerance: %+v", comparisons)
	}
	if len(comparisons) != 2 {
		t.Fatalf("comparisons = %d, want 2 (new benchmarks have no baseline)", len(comparisons))
	}
	if comparisons[0].Ratio != 1.2 || comparisons[0].Regressed {
		t.Errorf("a: %+v", comparisons[0])
	}
	if comparisons[1].Ratio != 0.75 || comparisons[1].Regressed {
		t.Errorf("b: %+v", comparisons[1])
	}
}

func TestCompareReportsFlagsRegression(t *testing.T) {
	baseline := repWith("a", 100.0, "b", 200.0)
	current := repWith("a", 126.0, "b", 200.0)
	comparisons, ok := compareReports(baseline, current, 0.25)
	if ok {
		t.Fatal("gate passed a 26% regression at 25% tolerance")
	}
	if !comparisons[0].Regressed || comparisons[1].Regressed {
		t.Errorf("regression flags wrong: %+v", comparisons)
	}
	out := formatComparisons(comparisons, 0.25)
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("format lacks REGRESSED marker:\n%s", out)
	}
}

func TestCompareReportsFlagsAllocRegression(t *testing.T) {
	baseline := repWith("a", 100.0)
	baseline.Benchmarks[0].AllocsPerOp = 0
	current := repWith("a", 100.0)
	current.Benchmarks[0].AllocsPerOp = 2
	comparisons, ok := compareReports(baseline, current, 0.25)
	if ok {
		t.Fatal("gate passed an allocs/op increase")
	}
	if !comparisons[0].AllocRegressed || comparisons[0].Regressed {
		t.Errorf("alloc regression flags wrong: %+v", comparisons[0])
	}
	if out := formatComparisons(comparisons, 0.25); !strings.Contains(out, "REGRESSED (allocs)") {
		t.Errorf("format lacks alloc regression marker:\n%s", out)
	}
}

func TestCompareReportsFlagsMissingBenchmark(t *testing.T) {
	baseline := repWith("a", 100.0, "gone", 50.0)
	current := repWith("a", 100.0)
	comparisons, ok := compareReports(baseline, current, 0.25)
	if ok {
		t.Fatal("gate passed with a baseline benchmark missing")
	}
	if !comparisons[1].Missing {
		t.Errorf("missing flag not set: %+v", comparisons[1])
	}
	if out := formatComparisons(comparisons, 0.25); !strings.Contains(out, "MISSING") {
		t.Errorf("format lacks MISSING marker:\n%s", out)
	}
}

func TestLoadReportCommittedBaseline(t *testing.T) {
	rep, err := loadReport(filepath.Join("..", "..", "BENCH_core.json"))
	if err != nil {
		t.Fatalf("loadReport(BENCH_core.json): %v", err)
	}
	if len(rep.Benchmarks) < 8 {
		t.Errorf("committed baseline has %d benchmarks, want >= 8", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %g", b.Name, b.NsPerOp)
		}
	}
}

func TestLoadReportRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(empty); err == nil {
		t.Error("empty benchmark list accepted")
	}
	if _, err := loadReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("absent file accepted")
	}
}
