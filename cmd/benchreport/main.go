// Command benchreport reruns the throughput benchmark families of the root
// package (snapshot generation and real-time block generation, each at
// N = 3 and N = 16, allocating and Into variants, plus the per-backend
// batched paths of the method registry and the fadingd session-create path
// cold and warm against the setup cache) through testing.Benchmark and writes
// the results as JSON: ns/op, allocs/op, bytes/op and the derived
// samples/sec. The committed BENCH_core.json at the repository root is the
// output of one run, giving future changes a perf trajectory to compare
// against:
//
//	go run ./cmd/benchreport -o BENCH_core.json
//
// With -compare the command doubles as the CI benchmark-regression gate: the
// fresh results are checked against a committed baseline report and the
// process exits non-zero when any benchmark's ns/op regresses by more than
// -tolerance (or disappears from the run):
//
//	go run ./cmd/benchreport -o /tmp/bench.json -compare BENCH_core.json -tolerance 0.25
//
// With -slo-compare the command instead gates a fresh cmd/slorun document
// against the committed BENCH_slo.json (no core benchmarks are run): every
// baseline scenario must still exist with the same config hash, pass its own
// release gates, not grow its error counters, and keep inject/recover latency
// percentiles within -slo-tolerance (plus the -slo-slack-ms noise floor):
//
//	go run ./cmd/slorun -all -q -out /tmp/slo.json
//	go run ./cmd/benchreport -slo-compare BENCH_slo.json -slo-current /tmp/slo.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/backend"
	"repro/internal/chanspec"
	"repro/internal/cmplxmat"
	"repro/internal/core"
	"repro/internal/doppler"
	"repro/internal/scenario"
	"repro/internal/service"
)

type result struct {
	// Name follows the sub-benchmark naming of bench_test.go, e.g.
	// "SnapshotGenerationThroughput/N=16/into".
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SamplesPerOp int     `json:"samples_per_op"`
	// SamplesPerSec is the envelope-sample throughput SamplesPerOp/(ns/op).
	SamplesPerSec float64 `json:"samples_per_sec"`
}

type report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []result `json:"benchmarks"`
}

// exponentialCovariance is the scalable N = 16 target K[i][j] = 0.7^|i-j|,
// the same workload benchExponentialCovariance drives in bench_test.go,
// built through the canonical scenario model.
func exponentialCovariance(n int) *cmplxmat.Matrix {
	m := scenario.ModelSpec{Type: scenario.ModelExponential, N: n, Rho: 0.7}
	k, err := m.Build()
	if err != nil {
		fatalf("exponential covariance: %v", err)
	}
	return k
}

func measure(name string, samplesPerOp int, fn func(b *testing.B)) result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return result{
		Name:          name,
		NsPerOp:       ns,
		AllocsPerOp:   r.AllocsPerOp(),
		BytesPerOp:    r.AllocedBytesPerOp(),
		SamplesPerOp:  samplesPerOp,
		SamplesPerSec: float64(samplesPerOp) * 1e9 / ns,
	}
}

func snapshotBenchmarks(name string, k *cmplxmat.Matrix) []result {
	n := k.Rows()
	newGen := func() *core.SnapshotGenerator {
		gen, err := core.NewSnapshotGenerator(core.SnapshotConfig{Covariance: k, Seed: 61})
		if err != nil {
			fatalf("snapshot generator %s: %v", name, err)
		}
		return gen
	}
	genAlloc := newGen()
	genInto := newGen()
	return []result{
		measure("SnapshotGenerationThroughput/"+name, n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = genAlloc.Generate()
			}
		}),
		measure("SnapshotGenerationThroughput/"+name+"/into", n, func(b *testing.B) {
			gaussian := make([]complex128, n)
			env := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := genInto.GenerateInto(gaussian, env); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
}

func realTimeBenchmarks(name string, k *cmplxmat.Matrix) []result {
	newGen := func() *core.RealTimeGenerator {
		gen, err := core.NewRealTimeGenerator(core.RealTimeConfig{
			Covariance:    k,
			Filter:        doppler.FilterSpec{M: 4096, NormalizedDoppler: 0.05},
			InputVariance: 0.5,
			Seed:          67,
		})
		if err != nil {
			fatalf("real-time generator %s: %v", name, err)
		}
		return gen
	}
	genAlloc := newGen()
	genInto := newGen()
	samples := genAlloc.N() * genAlloc.BlockLength()
	return []result{
		measure("RealTimeBlockThroughput/"+name, samples, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = genAlloc.GenerateBlock()
			}
		}),
		measure("RealTimeBlockThroughput/"+name+"/into", samples, func(b *testing.B) {
			blk := core.NewBlock(genInto.N(), genInto.BlockLength())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := genInto.GenerateBlockInto(blk); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
}

// backendBatchSize is the snapshots-per-op of the per-backend batched
// benchmarks (a whole number of 64-snapshot chunks).
const backendBatchSize = 1024

// backendBenchmarks measures every generation backend's batched path on the
// same covariance target, so method overhead regressions are gated like the
// core engine's. The name scheme is "BackendBatchedThroughput/<target>/<method>".
func backendBenchmarks(name string, k *cmplxmat.Matrix, methods []string) []result {
	var out []result
	for _, method := range methods {
		gen, err := backend.New(method, k, 71)
		if err != nil {
			fatalf("backend %s on %s: %v", method, name, err)
		}
		n := gen.N()
		batch := make([]core.Snapshot, backendBatchSize)
		for i := range batch {
			batch[i].Gaussian = make([]complex128, n)
			batch[i].Envelopes = make([]float64, n)
		}
		out = append(out, measure(
			"BackendBatchedThroughput/"+name+"/"+method, n*backendBatchSize,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := gen.GenerateBatchInto(batch, 0); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}
	return out
}

// fadingModelBenchmarks measures the batched snapshot path per channel model:
// each fading model wraps the generalized backend on the same covariance
// target, so the marginal cost of the per-sample envelope transform (Rician
// LOS shift, Nakagami probability-integral transform, Suzuki lognormal
// shadowing) is gated separately from the underlying engine. The name scheme
// extends the backend family: "BackendBatchedThroughput/<target>/generalized/<model>".
func fadingModelBenchmarks(name string, k *cmplxmat.Matrix) []result {
	models := []struct {
		fading string
		params *chanspec.FadingParams
	}{
		{chanspec.FadingRician, &chanspec.FadingParams{KFactor: 4}},
		{chanspec.FadingNakagamiM, &chanspec.FadingParams{M: 2.5}},
		{chanspec.FadingSuzuki, &chanspec.FadingParams{ShadowSigmaDB: 6, ShadowCoherence: 64}},
	}
	var out []result
	for _, m := range models {
		gen, err := backend.NewWithFading(chanspec.MethodGeneralized, m.fading, m.params, k, 71)
		if err != nil {
			fatalf("model %s on %s: %v", m.fading, name, err)
		}
		n := gen.N()
		batch := make([]core.Snapshot, backendBatchSize)
		for i := range batch {
			batch[i].Gaussian = make([]complex128, n)
			batch[i].Envelopes = make([]float64, n)
		}
		out = append(out, measure(
			"BackendBatchedThroughput/"+name+"/generalized/"+m.fading, n*backendBatchSize,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := gen.GenerateBatchInto(batch, 0); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}
	return out
}

// nonstationaryBenchmark measures the real-time block path under a two-leg
// Doppler trajectory (the only mode the nonstationary model supports — it has
// no snapshot form). The segment seam sits inside the measured range, so the
// per-segment panel dispatch is part of the gated cost.
func nonstationaryBenchmark(name string, k *cmplxmat.Matrix) []result {
	gen, err := core.NewRealTimeGenerator(core.RealTimeConfig{
		Covariance:    k,
		Filter:        doppler.FilterSpec{M: 4096},
		InputVariance: 0.5,
		Seed:          67,
		DopplerSegments: []core.DopplerSegment{
			{Blocks: 8, NormalizedDoppler: 0.02},
			{Blocks: 8, NormalizedDoppler: 0.1},
		},
	})
	if err != nil {
		fatalf("nonstationary generator %s: %v", name, err)
	}
	samples := gen.N() * gen.BlockLength()
	return []result{
		measure("RealTimeBlockThroughput/"+name+"/nonstationary_doppler", samples, func(b *testing.B) {
			blk := core.NewBlock(gen.N(), gen.BlockLength())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := gen.GenerateBlockInto(blk); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
}

// sessionCreateBenchmarks measures the fadingd session-create path, the
// service-level counterpart of the loadtest churn mode: cold is a distinct
// spec per op (every create pays the full covariance/eigen/Doppler-plan
// setup), warm is one spec repeated (every create after the first reuses the
// content-addressed setup artifact). The cold/warm gap is the cache's win
// and is gated like every other family.
func sessionCreateBenchmarks(n int) []result {
	svc := service.New(service.Config{Workers: 1, MaxSessions: -1})
	defer svc.Close()
	mgr := svc.Manager()
	spec := func(seed int64) *service.SessionSpec {
		return &service.SessionSpec{
			Model:      chanspec.Model{Type: chanspec.ModelExponential, N: n, Rho: 0.7},
			Seed:       seed,
			Blocks:     16,
			IDFTPoints: 2048,
		}
	}
	create := func(b *testing.B, s *service.SessionSpec) {
		sess, err := mgr.Create(s)
		if err != nil {
			b.Fatal(err)
		}
		mgr.Delete(sess.ID)
	}
	name := fmt.Sprintf("N=%d", n)
	// The seed counter lives outside the closure: testing.Benchmark reruns
	// it with growing b.N against the one shared server, and a restarted
	// seed sequence would hit artifacts cached by earlier probe runs.
	var coldSeed int64
	return []result{
		measure("SessionCreate/"+name+"/cold", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coldSeed++
				create(b, spec(coldSeed))
			}
		}),
		measure("SessionCreate/"+name+"/warm", 1, func(b *testing.B) {
			warm := spec(-1)
			create(b, warm) // prime the cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				create(b, warm)
			}
		}),
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file ('-' for stdout)")
	comparePath := flag.String("compare", "", "baseline report to gate against (e.g. BENCH_core.json)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs the baseline")
	sloBaseline := flag.String("slo-compare", "", "baseline BENCH_slo.json to gate a fresh SLO document against")
	sloCurrent := flag.String("slo-current", "", "fresh BENCH_slo.json from cmd/slorun (required with -slo-compare; skips the core benchmark run)")
	sloTolerance := flag.Float64("slo-tolerance", 0.5, "allowed fractional latency regression vs the SLO baseline")
	sloSlackMs := flag.Float64("slo-slack-ms", 5, "absolute latency slack in ms a regression must also exceed (noise floor for sub-ms percentiles)")
	flag.Parse()

	// SLO-compare mode gates two existing cmd/slorun documents against each
	// other and never runs the (slow) core benchmark families.
	if *sloBaseline != "" || *sloCurrent != "" {
		if *sloBaseline == "" || *sloCurrent == "" {
			fatalf("-slo-compare and -slo-current must be used together")
		}
		runSLOCompare(*sloBaseline, *sloCurrent, *sloTolerance, *sloSlackMs)
		return
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	targets := []struct {
		name string
		k    *cmplxmat.Matrix
	}{
		{"N=3", scenario.Eq22Covariance()},
		{"N=16", exponentialCovariance(16)},
	}
	for _, t := range targets {
		rep.Benchmarks = append(rep.Benchmarks, snapshotBenchmarks(t.name, t.k)...)
	}
	for _, t := range targets {
		rep.Benchmarks = append(rep.Benchmarks, realTimeBenchmarks(t.name, t.k)...)
	}
	// Per-backend batched benchmarks: the equal-power real spatial matrix is
	// inside every N = 3-capable method's vocabulary, and the two-branch pair
	// covers Ertel–Reed.
	spatial := scenario.ModelSpec{Type: scenario.ModelSpatial, N: 3, SpacingWavelengths: 1, AngularSpreadRad: 0.17453292519943295}
	eq23, err := spatial.Build()
	if err != nil {
		fatalf("spatial covariance: %v", err)
	}
	rep.Benchmarks = append(rep.Benchmarks, backendBenchmarks("N=3", eq23, []string{
		chanspec.MethodGeneralized,
		chanspec.MethodSalzWinters,
		chanspec.MethodBeaulieuMerani,
		chanspec.MethodNatarajan,
		chanspec.MethodSorooshyariDaut,
	})...)
	pairModel := scenario.ModelSpec{Type: scenario.ModelConstant, N: 2, Rho: 0.6}
	pair, err := pairModel.Build()
	if err != nil {
		fatalf("two-branch covariance: %v", err)
	}
	rep.Benchmarks = append(rep.Benchmarks, backendBenchmarks("N=2", pair, []string{
		chanspec.MethodErtelReed,
	})...)
	// Per-model batched benchmarks (channel-model zoo, docs/models.md): the
	// composite envelope models on the snapshot path, the trajectory model on
	// the real-time path it requires.
	rep.Benchmarks = append(rep.Benchmarks, fadingModelBenchmarks("N=3", eq23)...)
	rep.Benchmarks = append(rep.Benchmarks, nonstationaryBenchmark("N=3", scenario.Eq22Covariance())...)
	rep.Benchmarks = append(rep.Benchmarks, sessionCreateBenchmarks(16)...)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}

	if *comparePath == "" {
		return
	}
	baseline, err := loadReport(*comparePath)
	if err != nil {
		fatalf("baseline: %v", err)
	}
	comparisons, ok := compareReports(baseline, rep, *tolerance)
	fmt.Print(formatComparisons(comparisons, *tolerance))
	if !ok {
		fatalf("benchmark regression beyond %+.0f%% vs %s", 100**tolerance, *comparePath)
	}
	fmt.Printf("benchmark gate passed: %d benchmarks within %+.0f%% of %s\n",
		len(comparisons), 100**tolerance, *comparePath)
}
