package main

import (
	"fmt"
	"strings"

	"repro/internal/slolab"
)

// sloCheck is one latency comparison inside a scenario verdict.
type sloCheck struct {
	Name       string
	BaselineMs float64
	CurrentMs  float64
	Regressed  bool
}

// sloComparison is the verdict for one scenario present in the SLO baseline.
type sloComparison struct {
	Scenario string
	// Missing marks baseline scenarios absent from the current document.
	Missing bool
	// Stale marks scenarios whose config hash changed: the workload is no
	// longer the one the baseline measured, so the baseline must be
	// regenerated rather than compared against.
	Stale bool
	// GateFailed marks scenarios whose own release gates failed in the
	// current run.
	GateFailed bool
	// CountRegressed marks scenarios whose deterministic failure counters
	// (errors, server truncations) grew beyond the baseline.
	CountRegressed bool
	Checks         []sloCheck
	ok             bool
}

// sloPhases are the phases the latency comparison reads. Warmup is noise by
// design (cold caches), so only inject and recover are gated.
var sloPhases = []string{slolab.PhaseInject, slolab.PhaseRecover}

// compareSLODocs checks every baseline scenario against the current
// document: it must still exist, describe the same workload (config hash),
// pass its own gates, not grow its error/truncation counters, and keep
// inject/recover latency percentiles within baseline·(1 + tolerance). The
// boolean result is true when the gate passes.
func compareSLODocs(baseline, current *slolab.Doc, tolerance, slackMs float64) ([]sloComparison, bool) {
	ok := true
	comparisons := make([]sloComparison, 0, len(baseline.Scenarios))
	for _, base := range baseline.Scenarios {
		c := sloComparison{Scenario: base.Scenario, ok: true}
		cur := current.Find(base.Scenario)
		switch {
		case cur == nil:
			c.Missing = true
			c.ok = false
		case cur.Fingerprint.ConfigHash != base.Fingerprint.ConfigHash:
			c.Stale = true
			c.ok = false
		default:
			if !cur.Passed {
				c.GateFailed = true
				c.ok = false
			}
			for _, phase := range sloPhases {
				bp, cp := base.Phases[phase], cur.Phases[phase]
				if bp == nil || cp == nil {
					continue
				}
				if cp.Errors > bp.Errors || cp.Truncations > bp.Truncations {
					c.CountRegressed = true
					c.ok = false
				}
				c.compareLatency(phase+" block", bp.BlockLatency, cp.BlockLatency, tolerance, slackMs)
				c.compareLatency(phase+" create", bp.CreateLatency, cp.CreateLatency, tolerance, slackMs)
			}
		}
		if !c.ok {
			ok = false
		}
		comparisons = append(comparisons, c)
	}
	return comparisons, ok
}

// compareLatency gates one percentile digest pair. Percentiles the baseline
// never measured (0, e.g. create latency in a streaming-only phase) are not
// comparable and are skipped. A regression must exceed both the relative
// tolerance and an absolute slack: sub-millisecond percentiles jitter by
// integer factors between runs on shared hardware, and only the absolute
// floor separates that noise from a real slowdown.
func (c *sloComparison) compareLatency(name string, base, cur slolab.LatencySummary, tolerance, slackMs float64) {
	pairs := []struct {
		name       string
		b, current float64
	}{
		{name + " p50_ms", base.P50Ms, cur.P50Ms},
		{name + " p95_ms", base.P95Ms, cur.P95Ms},
		{name + " p99_ms", base.P99Ms, cur.P99Ms},
	}
	for _, p := range pairs {
		if p.b <= 0 {
			continue
		}
		check := sloCheck{Name: p.name, BaselineMs: p.b, CurrentMs: p.current}
		bound := p.b * (1 + tolerance)
		if floor := p.b + slackMs; floor > bound {
			bound = floor
		}
		check.Regressed = p.current > bound
		if check.Regressed {
			c.ok = false
		}
		c.Checks = append(c.Checks, check)
	}
}

// formatSLOComparisons renders the comparison table, one block per baseline
// scenario.
func formatSLOComparisons(comparisons []sloComparison, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLO regression gate (latency tolerance %+.0f%%):\n", 100*tolerance)
	for _, c := range comparisons {
		switch {
		case c.Missing:
			fmt.Fprintf(&b, "  %-32s MISSING from current document\n", c.Scenario)
			continue
		case c.Stale:
			fmt.Fprintf(&b, "  %-32s STALE baseline (config hash changed; regenerate BENCH_slo.json)\n", c.Scenario)
			continue
		}
		verdict := "ok"
		switch {
		case c.GateFailed:
			verdict = "GATES FAILED"
		case c.CountRegressed:
			verdict = "ERROR COUNTS REGRESSED"
		case !c.ok:
			verdict = "LATENCY REGRESSED"
		}
		fmt.Fprintf(&b, "  %-32s %s\n", c.Scenario, verdict)
		for _, ch := range c.Checks {
			mark := ""
			if ch.Regressed {
				mark = "  REGRESSED"
			}
			fmt.Fprintf(&b, "    %-28s %8.3f -> %8.3f ms%s\n", ch.Name, ch.BaselineMs, ch.CurrentMs, mark)
		}
	}
	return b.String()
}

// runSLOCompare is the -slo-compare entry: load both documents, gate, exit
// non-zero on regression.
func runSLOCompare(baselinePath, currentPath string, tolerance, slackMs float64) {
	baseline, err := slolab.LoadDoc(baselinePath)
	if err != nil {
		fatalf("slo baseline: %v", err)
	}
	current, err := slolab.LoadDoc(currentPath)
	if err != nil {
		fatalf("slo current: %v", err)
	}
	comparisons, ok := compareSLODocs(baseline, current, tolerance, slackMs)
	fmt.Print(formatSLOComparisons(comparisons, tolerance))
	if !ok {
		fatalf("SLO regression vs %s", baselinePath)
	}
	fmt.Printf("SLO gate passed: %d scenarios within %+.0f%% of %s\n",
		len(comparisons), 100*tolerance, baselinePath)
}
