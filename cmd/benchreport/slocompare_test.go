package main

import (
	"strings"
	"testing"

	"repro/internal/slolab"
)

// sloDoc builds a minimal document with one scenario whose inject phase has
// the given latency and counters.
func sloDoc(hash string, passed bool, p95 float64, errors, truncations int) *slolab.Doc {
	return &slolab.Doc{
		Kind: slolab.DocKind,
		Scenarios: []*slolab.Summary{{
			Scenario:    "s",
			Passed:      passed,
			Fingerprint: slolab.Fingerprint{Scenario: "s", ConfigHash: hash},
			Phases: map[string]*slolab.PhaseMetrics{
				slolab.PhaseInject: {
					Errors:       errors,
					Truncations:  truncations,
					BlockLatency: slolab.LatencySummary{Count: 100, P50Ms: p95 / 2, P95Ms: p95, P99Ms: p95 * 2},
				},
				slolab.PhaseRecover: {
					BlockLatency: slolab.LatencySummary{Count: 100, P50Ms: 1, P95Ms: 2, P99Ms: 3},
				},
			},
		}},
	}
}

func TestCompareSLODocs(t *testing.T) {
	base := sloDoc("h1", true, 10, 0, 0)
	cases := []struct {
		name    string
		current *slolab.Doc
		ok      bool
		marker  string
	}{
		{"identical", sloDoc("h1", true, 10, 0, 0), true, "ok"},
		{"within tolerance", sloDoc("h1", true, 14, 0, 0), true, "ok"},
		{"latency regressed", sloDoc("h1", true, 16, 0, 0), false, "LATENCY REGRESSED"},
		{"gates failed", sloDoc("h1", false, 10, 0, 0), false, "GATES FAILED"},
		{"errors regressed", sloDoc("h1", true, 10, 1, 0), false, "ERROR COUNTS REGRESSED"},
		{"truncations regressed", sloDoc("h1", true, 10, 0, 2), false, "ERROR COUNTS REGRESSED"},
		{"stale hash", sloDoc("h2", true, 10, 0, 0), false, "STALE"},
		{"missing scenario", &slolab.Doc{Kind: slolab.DocKind}, false, "MISSING"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			comparisons, ok := compareSLODocs(base, tc.current, 0.5, 0)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v (%+v)", ok, tc.ok, comparisons)
			}
			if out := formatSLOComparisons(comparisons, 0.5); !strings.Contains(out, tc.marker) {
				t.Fatalf("output missing %q:\n%s", tc.marker, out)
			}
		})
	}
}

// TestCompareSLODocsSkipsUnmeasuredPercentiles pins the zero-baseline rule:
// a phase the baseline never sampled (create latency in a streaming-only
// scenario) must not produce comparisons.
func TestCompareSLODocsSkipsUnmeasuredPercentiles(t *testing.T) {
	base := sloDoc("h1", true, 10, 0, 0)
	current := sloDoc("h1", true, 10, 0, 0)
	// Current grows create latency out of nowhere; with a zero baseline it
	// must be ignored, not treated as an infinite regression.
	current.Scenarios[0].Phases[slolab.PhaseInject].CreateLatency =
		slolab.LatencySummary{Count: 5, P95Ms: 1e9}
	comparisons, ok := compareSLODocs(base, current, 0.5, 0)
	if !ok {
		t.Fatalf("unmeasured percentile failed the gate: %+v", comparisons)
	}
	for _, c := range comparisons {
		for _, ch := range c.Checks {
			if strings.Contains(ch.Name, "create") {
				t.Fatalf("zero-baseline create percentile compared: %+v", ch)
			}
		}
	}
}

// TestCompareSLODocsNewScenarioIgnored pins the asymmetry: scenarios new in
// the current document have no baseline and must not affect the gate.
func TestCompareSLODocsNewScenarioIgnored(t *testing.T) {
	base := sloDoc("h1", true, 10, 0, 0)
	current := sloDoc("h1", true, 10, 0, 0)
	current.Scenarios = append(current.Scenarios, &slolab.Summary{
		Scenario:    "brand-new",
		Passed:      false,
		Fingerprint: slolab.Fingerprint{Scenario: "brand-new", ConfigHash: "x"},
		Phases:      map[string]*slolab.PhaseMetrics{},
	})
	comparisons, ok := compareSLODocs(base, current, 0.5, 0)
	if !ok || len(comparisons) != 1 {
		t.Fatalf("new scenario affected the gate: ok=%v, %d comparisons", ok, len(comparisons))
	}
}

// TestCompareSLODocsSlackFloor pins the noise floor: a sub-millisecond
// percentile doubling is not a regression until it also clears the absolute
// slack.
func TestCompareSLODocsSlackFloor(t *testing.T) {
	base := sloDoc("h1", true, 0.4, 0, 0)
	current := sloDoc("h1", true, 1.0, 0, 0)
	if _, ok := compareSLODocs(base, current, 0.5, 5); !ok {
		t.Fatal("sub-slack jitter failed the gate")
	}
	if _, ok := compareSLODocs(base, current, 0.5, 0); ok {
		t.Fatal("without slack the same jitter must trip the relative tolerance")
	}
}
