package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// comparison is the verdict for one benchmark present in the baseline.
type comparison struct {
	Name           string
	BaselineNs     float64
	CurrentNs      float64
	BaselineAllocs int64
	CurrentAllocs  int64
	// Ratio is current/baseline ns/op; > 1 means slower.
	Ratio float64
	// Regressed marks benchmarks slower than the ns/op tolerance allows.
	Regressed bool
	// AllocRegressed marks benchmarks whose allocs/op grew at all: unlike
	// wall time, allocation counts are deterministic and machine-invariant,
	// so any increase is a real regression regardless of runner hardware.
	AllocRegressed bool
	// Missing marks baseline benchmarks absent from the current report —
	// a silently dropped benchmark must not pass the gate.
	Missing bool
}

// compareReports checks every baseline benchmark against the current report:
// a benchmark regresses when its ns/op exceeds baseline·(1 + tolerance) or
// its allocs/op exceeds the baseline at all. Benchmarks new in the current
// report are ignored (they have no baseline); benchmarks missing from it
// are flagged. The boolean result is true when the gate passes.
func compareReports(baseline, current report, tolerance float64) ([]comparison, bool) {
	currentByName := make(map[string]result, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		currentByName[b.Name] = b
	}
	ok := true
	comparisons := make([]comparison, 0, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		c := comparison{Name: b.Name, BaselineNs: b.NsPerOp, BaselineAllocs: b.AllocsPerOp}
		if cur, found := currentByName[b.Name]; found {
			c.CurrentNs = cur.NsPerOp
			c.CurrentAllocs = cur.AllocsPerOp
			c.Ratio = cur.NsPerOp / b.NsPerOp
			c.Regressed = c.Ratio > 1+tolerance
			c.AllocRegressed = cur.AllocsPerOp > b.AllocsPerOp
		} else {
			c.Missing = true
		}
		if c.Regressed || c.AllocRegressed || c.Missing {
			ok = false
		}
		comparisons = append(comparisons, c)
	}
	return comparisons, ok
}

// formatComparisons renders the comparison table, one line per baseline
// benchmark.
func formatComparisons(comparisons []comparison, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark regression gate (tolerance %+.0f%%):\n", 100*tolerance)
	for _, c := range comparisons {
		if c.Missing {
			fmt.Fprintf(&b, "  %-48s MISSING from current report\n", c.Name)
			continue
		}
		verdict := "ok"
		switch {
		case c.Regressed && c.AllocRegressed:
			verdict = "REGRESSED (time, allocs)"
		case c.Regressed:
			verdict = "REGRESSED"
		case c.AllocRegressed:
			verdict = "REGRESSED (allocs)"
		case c.Ratio < 1:
			verdict = "faster"
		}
		fmt.Fprintf(&b, "  %-48s %12.0f -> %12.0f ns/op  (%+6.1f%%)  %d -> %d allocs/op  %s\n",
			c.Name, c.BaselineNs, c.CurrentNs, 100*(c.Ratio-1), c.BaselineAllocs, c.CurrentAllocs, verdict)
	}
	return b.String()
}

// loadReport reads a committed benchmark report.
func loadReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("%s contains no benchmarks", path)
	}
	return rep, nil
}
