// Command slorun drives the SLO lab: it loads the fault-injection scenario
// specs of a directory (scenarios/slo by default), runs the selected ones
// through the internal/slolab engine against a live fadingd — an in-process
// loopback server per scenario, or one external deployment via -addr — and
// exits non-zero when any release gate fails. The combined summary document
// is the SLO benchmark baseline (BENCH_slo.json) that cmd/benchreport
// -slo-compare gates regressions against.
//
//	go run ./cmd/slorun -all                         # run every SLO scenario
//	go run ./cmd/slorun -list                        # list scenarios and tags
//	go run ./cmd/slorun -run kill                    # name/tag substring filter
//	go run ./cmd/slorun -all -out BENCH_slo.json -artifacts out/slo
//	go run ./cmd/slorun -run steady -addr http://127.0.0.1:8080
//
// Exit codes: 0 all gates passed, 1 at least one gate failed, 2 bad usage or
// spec/config error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/slolab"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and arguments, so the CLI is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slorun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("dir", filepath.Join("scenarios", "slo"), "SLO scenario spec directory")
		all       = fs.Bool("all", false, "run every scenario")
		runMatch  = fs.String("run", "", "run scenarios whose name or tags contain this substring")
		list      = fs.Bool("list", false, "list scenarios and exit")
		addr      = fs.String("addr", "", "target an external fadingd base URL instead of per-scenario in-process servers")
		artifacts = fs.String("artifacts", "", "write per-scenario raw samples and summaries to this directory")
		out       = fs.String("out", "", "write the combined BENCH_slo.json document to this file")
		commit    = fs.String("commit", "", "commit hash stamped into provenance")
		quiet     = fs.Bool("q", false, "suppress the per-scenario report on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	specs, err := slolab.LoadDir(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "slorun: %v\n", err)
		return 2
	}
	if len(specs) == 0 {
		fmt.Fprintf(stderr, "slorun: no SLO scenario specs in %s\n", *dir)
		return 2
	}

	if *list {
		for _, s := range specs {
			tags := ""
			if len(s.Tags) > 0 {
				tags = " [" + strings.Join(s.Tags, ", ") + "]"
			}
			fmt.Fprintf(stdout, "%-32s%s  %s\n", s.Name, tags, s.Description)
		}
		return 0
	}

	selected := filter(specs, *all, *runMatch)
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "slorun: no scenarios selected; use -all, -list, or -run <substring>\n")
		return 2
	}

	doc := &slolab.Doc{Kind: slolab.DocKind, Commit: *commit, GoVersion: runtime.Version()}
	for _, s := range selected {
		opts := slolab.RunOptions{Addr: *addr, ArtifactsDir: *artifacts, Commit: *commit}
		if !*quiet {
			opts.Logf = func(format string, a ...any) {
				fmt.Fprintf(stderr, "slorun: "+format+"\n", a...)
			}
		}
		sum, err := slolab.Run(s, opts)
		if err != nil {
			fmt.Fprintf(stderr, "slorun: %s: %v\n", s.Name, err)
			return 2
		}
		doc.Scenarios = append(doc.Scenarios, sum)
		if !*quiet {
			printSummary(stdout, sum)
		}
		fmt.Fprintf(stderr, "slorun: %-32s %s\n", s.Name, status(sum.Passed))
	}

	if *out != "" {
		if err := writeDoc(*out, doc); err != nil {
			fmt.Fprintf(stderr, "slorun: %v\n", err)
			return 2
		}
	}
	if !doc.AllPassed() {
		failed := 0
		for _, s := range doc.Scenarios {
			if !s.Passed {
				failed++
			}
		}
		fmt.Fprintf(stderr, "slorun: %d of %d scenarios FAILED\n", failed, len(doc.Scenarios))
		return 1
	}
	fmt.Fprintf(stderr, "slorun: all %d scenarios passed\n", len(doc.Scenarios))
	return 0
}

// filter selects the scenarios to run: all of them, or those whose name or
// tags contain the match substring.
func filter(specs []*slolab.Spec, all bool, match string) []*slolab.Spec {
	if all {
		return specs
	}
	if match == "" {
		return nil
	}
	var out []*slolab.Spec
	for _, s := range specs {
		if strings.Contains(s.Name, match) || s.HasTag(match) {
			out = append(out, s)
		}
	}
	return out
}

// printSummary renders one scenario's verdicts for humans.
func printSummary(w io.Writer, sum *slolab.Summary) {
	fmt.Fprintf(w, "## %s (%s)\n", sum.Scenario, sum.Fingerprint.Fault)
	fmt.Fprintf(w, "config %s seed %d\n", sum.Fingerprint.ConfigHash[:12], sum.Fingerprint.Seed)
	for _, phase := range []string{"warmup", "inject", "recover"} {
		pm := sum.Phases[phase]
		if pm == nil {
			continue
		}
		fmt.Fprintf(w, "  %-8s %6d blocks %8.1f blk/s  block p50/p95/p99 %.2f/%.2f/%.2f ms  create p95 %.2f ms  err %d cuts %d trunc %d rej %d\n",
			phase, pm.Blocks, pm.BlocksPerSec,
			pm.BlockLatency.P50Ms, pm.BlockLatency.P95Ms, pm.BlockLatency.P99Ms,
			pm.CreateLatency.P95Ms, pm.Errors, pm.Cuts, pm.Truncations, pm.Rejections)
	}
	if sum.Identity != nil {
		fmt.Fprintf(w, "  identity %d/%d matched after %d cuts, %d resumes\n",
			sum.Identity.Matched, sum.Identity.Clients, sum.Identity.Cuts, sum.Identity.Resumes)
	}
	if sum.Scaling != nil {
		for _, p := range sum.Scaling.Points {
			fmt.Fprintf(w, "  replicas=%-2d %6d blocks %8.1f blk/s  speedup %.2f  efficiency %.2f  token rebuilds %d\n",
				p.Replicas, p.Blocks, p.BlocksPerSec, p.Speedup, p.Efficiency, p.TokenRebuilds)
		}
	}
	for _, g := range sum.Gates {
		mark := "PASS"
		if g.Skipped {
			mark = "SKIP (" + g.Reason + ")"
		} else if !g.Passed {
			mark = "FAIL"
		}
		detail := ""
		for _, c := range g.Checks {
			detail += fmt.Sprintf(" %s %.3f %s %.3f;", c.Name, c.Measured, c.Op, c.Bound)
		}
		fmt.Fprintf(w, "  gate %-14s %-8s %s%s\n", g.Type, g.Phase, mark, strings.TrimSuffix(detail, ";"))
	}
}

func status(passed bool) string {
	if passed {
		return "PASS"
	}
	return "FAIL"
}

// writeDoc writes the combined document as indented JSON.
func writeDoc(path string, doc *slolab.Doc) error {
	data, err := slolab.EncodeDoc(doc)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
