package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/slolab"
)

// committedDir points the tests at the specs CI actually runs.
const committedDir = "../../scenarios/slo"

// tinySpec is a fast scenario for CLI behavior tests.
const tinySpec = `{
	"name": "tiny",
	"seed": 3,
	"clients": 1,
	"blocks_per_request": 4,
	"session": {"model": {"type": "eq22"}, "seed": 0, "blocks": 8, "idft_points": 64},
	"phases": {"warmup": {"units": 0}, "inject": {"units": 8}, "recover": {"units": 0}},
	"fault": {"type": "none"},
	"gates": [{"type": "error_rate"}]
}`

func writeSpec(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestListCommittedScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", committedDir, "-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"steady-baseline", "slow-consumer", "connection-churn",
		"spec-churn-cold-warm", "session-cap-saturation", "kill-and-resume",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

// TestCommittedSpecsValidate keeps the committed specs loadable — a broken
// threshold or typo'd field fails here, not in CI's live run.
func TestCommittedSpecsValidate(t *testing.T) {
	specs, err := slolab.LoadDir(committedDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(specs) < 5 {
		t.Fatalf("want at least 5 committed SLO scenarios, got %d", len(specs))
	}
}

// TestRunDeterministicOutput is the CLI-level determinism contract: two runs
// of the same spec directory agree on every deterministic summary field —
// fingerprints, work accounting, gate verdicts — differing only in timing.
func TestRunDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "tiny.json", tinySpec)
	outDir := t.TempDir()
	outA := filepath.Join(outDir, "a.json")
	outB := filepath.Join(outDir, "b.json")
	var sink bytes.Buffer
	if code := run([]string{"-dir", dir, "-all", "-q", "-out", outA}, &sink, &sink); code != 0 {
		t.Fatalf("first run: exit %d: %s", code, sink.String())
	}
	if code := run([]string{"-dir", dir, "-all", "-q", "-out", outB}, &sink, &sink); code != 0 {
		t.Fatalf("second run: exit %d: %s", code, sink.String())
	}
	a, err := slolab.LoadDoc(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := slolab.LoadDoc(outB)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Find("tiny"), b.Find("tiny")
	if sa == nil || sb == nil {
		t.Fatal("scenario missing from a run")
	}
	if !reflect.DeepEqual(sa.Fingerprint, sb.Fingerprint) {
		t.Fatalf("fingerprints differ:\n%+v\n%+v", sa.Fingerprint, sb.Fingerprint)
	}
	for _, phase := range []string{"warmup", "inject", "recover"} {
		pa, pb := sa.Phases[phase], sb.Phases[phase]
		if pa.Blocks != pb.Blocks || pa.Requests != pb.Requests ||
			pa.Errors != pb.Errors || pa.Creates != pb.Creates {
			t.Fatalf("%s accounting differs: %+v vs %+v", phase, pa, pb)
		}
	}
	if len(sa.Gates) != len(sb.Gates) {
		t.Fatalf("gate counts differ: %d vs %d", len(sa.Gates), len(sb.Gates))
	}
	for i := range sa.Gates {
		if sa.Gates[i].Passed != sb.Gates[i].Passed || sa.Gates[i].Type != sb.Gates[i].Type {
			t.Fatalf("gate %d differs: %+v vs %+v", i, sa.Gates[i], sb.Gates[i])
		}
	}
}

func TestRunGateFailureExitCode(t *testing.T) {
	dir := t.TempDir()
	doomed := strings.Replace(tinySpec, `"name": "tiny"`, `"name": "doomed"`, 1)
	doomed = strings.Replace(doomed,
		`[{"type": "error_rate"}]`,
		`[{"type": "throughput", "min_blocks_per_sec": 1e12}]`, 1)
	writeSpec(t, dir, "doomed.json", doomed)
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir, "-all", "-q"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "FAILED") {
		t.Fatalf("stderr missing failure notice: %s", errb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "tiny.json", tinySpec)
	var sink bytes.Buffer
	if code := run([]string{"-dir", dir}, &sink, &sink); code != 2 {
		t.Fatalf("no selection: exit %d, want 2", code)
	}
	if code := run([]string{"-dir", filepath.Join(dir, "missing")}, &sink, &sink); code != 2 {
		t.Fatalf("missing dir: exit %d, want 2", code)
	}
	writeSpec(t, dir, "broken.json", `{"name": "broken"}`)
	if code := run([]string{"-dir", dir, "-all"}, &sink, &sink); code != 2 {
		t.Fatalf("broken spec: exit %d, want 2", code)
	}
}

// TestRunArtifacts checks the CLI plumbs the artifacts directory through.
func TestRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "tiny.json", tinySpec)
	art := filepath.Join(dir, "artifacts")
	var sink bytes.Buffer
	if code := run([]string{"-dir", dir, "-all", "-q", "-artifacts", art, "-commit", "abc123"}, &sink, &sink); code != 0 {
		t.Fatalf("exit %d: %s", code, sink.String())
	}
	for _, f := range []string{"tiny.summary.json", "tiny.samples.json"} {
		if _, err := os.Stat(filepath.Join(art, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}
}
