// Command fig4 regenerates the evaluation artifacts of Section 6 of the
// paper: the covariance matrices of Eq. (22) (spectral correlation) and
// Eq. (23) (spatial correlation), and the envelope traces of Fig. 4(a)/(b)
// (three correlated Rayleigh envelopes in dB around their RMS value, plotted
// over the first 200 samples of a real-time block). Generation goes through
// the public Stream API, and -method regenerates the figure under any
// backend of the method registry to visualize where the conventional methods
// bias the covariance (see docs/methods.md).
//
// Usage:
//
//	fig4 -panel a            # Fig. 4(a): spectral correlation
//	fig4 -panel b            # Fig. 4(b): spatial correlation
//	fig4 -panel a -print-cov # print the Eq. (22)/(23) covariance matrix only
//	fig4 -panel a -method natarajan   # the real-forced Cholesky baseline
//	fig4 -panel b -samples 200 -format csv > fig4b.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	rayleigh "repro"
	"repro/internal/cmplxmat"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fig4: ")

	var (
		panel    = flag.String("panel", "a", `panel to regenerate: "a" (spectral, Eq. 22) or "b" (spatial, Eq. 23)`)
		samples  = flag.Int("samples", 200, "number of time samples to emit (the paper plots 200)")
		seed     = flag.Int64("seed", 1, "random seed")
		printCov = flag.Bool("print-cov", false, "print the desired covariance matrix and exit")
		format   = flag.String("format", "table", `output format: "table" or "csv"`)
		idft     = flag.Int("idft", 4096, "IDFT length M of the Doppler generators")
		fm       = flag.Float64("fm", 0.05, "normalized maximum Doppler frequency Fm/Fs")
		method   = flag.String("method", "", `generation method ("generalized" default; see scenariorun -methods)`)
	)
	flag.Parse()

	covariance, label, err := panelCovariance(*panel)
	if err != nil {
		log.Fatal(err)
	}

	if *printCov {
		fmt.Printf("Desired covariance matrix K (%s):\n%s", label, formatRows(covariance))
		return
	}

	if *samples <= 0 || *samples > *idft {
		log.Fatalf("samples must be in 1..%d", *idft)
	}

	stream, err := rayleigh.NewStream(rayleigh.RealTimeConfig{
		Covariance:        covariance,
		IDFTPoints:        *idft,
		NormalizedDoppler: *fm,
		Seed:              *seed,
		Method:            *method,
	})
	if err != nil {
		log.Fatalf("building real-time stream: %v", err)
	}
	cursor, err := stream.NewCursor()
	if err != nil {
		log.Fatalf("opening cursor: %v", err)
	}
	var block rayleigh.Block
	if err := cursor.Next(&block); err != nil {
		log.Fatalf("generating block: %v", err)
	}

	// Convert each envelope to dB around its RMS value, as in Fig. 4.
	dB := make([][]float64, stream.N())
	for j := 0; j < stream.N(); j++ {
		series, err := stats.EnvelopeDB(block.Envelopes[j])
		if err != nil {
			log.Fatalf("normalizing envelope %d: %v", j, err)
		}
		dB[j] = series[:*samples]
	}

	switch *format {
	case "csv":
		writeCSV(os.Stdout, dB)
	case "table":
		fmt.Printf("Figure 4(%s): %d samples of %d correlated Rayleigh envelopes (dB around RMS)\n",
			*panel, *samples, stream.N())
		fmt.Printf("Doppler: M=%d, fm=%g, sigma_g^2 (Eq. 19) = %.4f\n\n", *idft, *fm, stream.SampleVariance())
		writeTable(os.Stdout, dB)
		printBlockCovariance(block.Gaussian, covariance)
	default:
		log.Fatalf("unknown format %q", *format)
	}
}

// printBlockCovariance reports the block's time-averaged covariance against
// the target — the quantitative statement behind the visual claim of Fig. 4
// that the envelopes are correlated as designed.
func printBlockCovariance(gaussian [][]complex128, target [][]complex128) {
	cov, err := stats.SampleCovarianceFromSeries(gaussian)
	if err != nil {
		log.Fatalf("estimating block covariance: %v", err)
	}
	cmp, err := stats.CompareCovariance(cov, cmplxmat.MustFromRows(target))
	if err != nil {
		log.Fatalf("comparing covariance: %v", err)
	}
	fmt.Printf("\nTime-averaged covariance of the block:\n%s", formatMatrix(cov))
	fmt.Printf("Desired covariance matrix:\n%s", formatRows(target))
	fmt.Printf("Worst entry deviation: %.4f (Frobenius: %.4f, relative: %.4f)\n",
		cmp.MaxAbs, cmp.Frobenius, cmp.Relative)
}

// panelCovariance builds the desired covariance matrix for the selected
// panel using the Section 6 parameters, through the public model builders.
func panelCovariance(panel string) ([][]complex128, string, error) {
	switch panel {
	case "a":
		cov, err := rayleigh.SpectralCovariance(rayleigh.SpectralConfig{
			Frequencies:    []float64{400e3, 200e3, 0},
			Delays:         [][]float64{{0, 1e-3, 4e-3}, {1e-3, 0, 3e-3}, {4e-3, 3e-3, 0}},
			MaxDopplerHz:   50,
			RMSDelaySpread: 1e-6,
		})
		if err != nil {
			return nil, "", err
		}
		return cov, "Eq. (22), spectral correlation", nil
	case "b":
		cov, err := rayleigh.SpatialCovariance(rayleigh.SpatialConfig{
			Antennas:           3,
			SpacingWavelengths: 1,
			AngularSpreadRad:   math.Pi / 18,
			MeanAngleRad:       0,
		})
		if err != nil {
			return nil, "", err
		}
		return cov, "Eq. (23), spatial correlation", nil
	default:
		return nil, "", fmt.Errorf("unknown panel %q (want \"a\" or \"b\")", panel)
	}
}

func formatRows(rows [][]complex128) string {
	out := ""
	for _, row := range rows {
		for _, v := range row {
			out += fmt.Sprintf("  %8.4f%+8.4fi", real(v), imag(v))
		}
		out += "\n"
	}
	return out
}

func formatMatrix(m *cmplxmat.Matrix) string {
	rows := make([][]complex128, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return formatRows(rows)
}

func writeCSV(w *os.File, dB [][]float64) {
	fmt.Fprint(w, "sample")
	for j := range dB {
		fmt.Fprintf(w, ",envelope%d_dB", j+1)
	}
	fmt.Fprintln(w)
	for l := range dB[0] {
		fmt.Fprintf(w, "%d", l)
		for j := range dB {
			fmt.Fprintf(w, ",%.4f", dB[j][l])
		}
		fmt.Fprintln(w)
	}
}

func writeTable(w *os.File, dB [][]float64) {
	fmt.Fprintf(w, "%8s", "sample")
	for j := range dB {
		fmt.Fprintf(w, "%14s", fmt.Sprintf("env%d (dB)", j+1))
	}
	fmt.Fprintln(w)
	step := len(dB[0]) / 20
	if step < 1 {
		step = 1
	}
	for l := 0; l < len(dB[0]); l += step {
		fmt.Fprintf(w, "%8d", l)
		for j := range dB {
			fmt.Fprintf(w, "%14.2f", dB[j][l])
		}
		fmt.Fprintln(w)
	}
}
