package main

import (
	"math/cmplx"
	"strings"
	"testing"
)

func TestPanelCovariance(t *testing.T) {
	a, labelA, err := panelCovariance("a")
	if err != nil {
		t.Fatalf("panelCovariance(a): %v", err)
	}
	if !strings.Contains(labelA, "22") {
		t.Errorf("panel a label %q does not reference Eq. (22)", labelA)
	}
	if cmplx.Abs(a[0][1]-(0.3782+0.4753i)) > 6e-4 {
		t.Errorf("panel a K(0,1) = %v, want Eq. (22) value", a[0][1])
	}

	b, labelB, err := panelCovariance("b")
	if err != nil {
		t.Fatalf("panelCovariance(b): %v", err)
	}
	if !strings.Contains(labelB, "23") {
		t.Errorf("panel b label %q does not reference Eq. (23)", labelB)
	}
	if cmplx.Abs(b[0][1]-0.8123) > 6e-4 {
		t.Errorf("panel b K(0,1) = %v, want Eq. (23) value", b[0][1])
	}

	if _, _, err := panelCovariance("c"); err == nil {
		t.Errorf("unknown panel did not error")
	}
}

func TestFormatMatrixMentionsEntries(t *testing.T) {
	m, _, err := panelCovariance("b")
	if err != nil {
		t.Fatalf("panelCovariance: %v", err)
	}
	s := formatRows(m)
	if !strings.Contains(s, "0.8123") {
		t.Errorf("formatMatrix output does not contain the expected entry:\n%s", s)
	}
	if got := strings.Count(s, "\n"); got != 3 {
		t.Errorf("formatMatrix printed %d rows, want 3", got)
	}
}
