// Command validate runs the statistical validation experiments behind
// EXPERIMENTS.md and prints a report:
//
//   - E5/E9: snapshot-mode sample covariance versus the desired Eq. (22)
//     matrix, and the envelope mean/variance relations of Eq. (14)–(15);
//   - E6: behaviour on an indefinite covariance matrix — Cholesky baselines
//     abort, the proposed forcing succeeds, and the zero-clamp Frobenius
//     error is compared with the ε-clamp of Sorooshyari–Daut;
//   - E7: the Doppler variance-changing effect — real-time covariance error
//     with the Eq. (19) correction versus the unit-variance assumption;
//   - E8: per-envelope autocorrelation of the real-time output versus
//     J0(2π·fm·d).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/baseline"
	"repro/internal/cmplxmat"
	"repro/internal/core"
	"repro/internal/doppler"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")

	var (
		seed   = flag.Int64("seed", 1, "random seed")
		draws  = flag.Int("draws", 200000, "snapshot draws for the covariance/moment checks")
		blocks = flag.Int("blocks", 20, "real-time blocks for the Doppler checks")
	)
	flag.Parse()

	eq22 := cmplxmat.MustFromRows([][]complex128{
		{1, 0.3782 + 0.4753i, 0.0878 + 0.2207i},
		{0.3782 - 0.4753i, 1, 0.3063 + 0.3849i},
		{0.0878 - 0.2207i, 0.3063 - 0.3849i, 1},
	})

	validateSnapshotStatistics(eq22, *draws, *seed)
	validateNonPSDHandling()
	validateDopplerVarianceEffect(eq22, *blocks, *seed)
	validateDopplerAutocorrelation(*blocks, *seed)
}

func validateSnapshotStatistics(k *cmplxmat.Matrix, draws int, seed int64) {
	fmt.Println("== E5/E9: snapshot statistics (Section 4.5, Eq. 14-15) ==")
	gen, err := core.NewSnapshotGenerator(core.SnapshotConfig{Covariance: k, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	samples := make([][]complex128, draws)
	env := make([]float64, draws)
	for i := range samples {
		s := gen.Generate()
		samples[i] = s.Gaussian
		env[i] = s.Envelopes[0]
	}
	cov, err := stats.SampleCovariance(samples)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := stats.CompareCovariance(cov, k)
	if err != nil {
		log.Fatal(err)
	}
	mean, _ := stats.Mean(env)
	variance, _ := stats.Variance(env)
	wantMean, _ := core.ExpectedEnvelopeMean(1)
	wantVar, _ := core.GaussianPowerToEnvelopeVariance(1)
	dist, _ := stats.FitRayleigh(env)
	ks, pval, err := stats.KolmogorovSmirnovRayleigh(env, dist)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("draws: %d\n", draws)
	fmt.Printf("sample covariance vs Eq.(22): max |err| = %.4f, relative Frobenius = %.4f\n", cmp.MaxAbs, cmp.Relative)
	fmt.Printf("envelope mean:     %.4f   (Eq. 14 predicts %.4f, rel err %.2f%%)\n", mean, wantMean, 100*math.Abs(mean-wantMean)/wantMean)
	fmt.Printf("envelope variance: %.4f   (Eq. 15 predicts %.4f, rel err %.2f%%)\n", variance, wantVar, 100*math.Abs(variance-wantVar)/wantVar)
	fmt.Printf("Rayleigh KS statistic: %.4f (p-value %.3f)\n\n", ks, pval)
}

func validateNonPSDHandling() {
	fmt.Println("== E6: indefinite covariance handling (Sections 4.2-4.3) ==")
	indefinite := cmplxmat.MustFromRows([][]complex128{
		{1, 0.9, -0.9},
		{0.9, 1, 0.9},
		{-0.9, 0.9, 1},
	})
	chol := &baseline.CholeskyColoring{}
	if err := chol.Setup(indefinite); err != nil {
		fmt.Printf("Cholesky baseline (Beaulieu-Merani/Natarajan style): FAILS as expected: %v\n", err)
	} else {
		fmt.Println("Cholesky baseline unexpectedly succeeded")
	}
	forced, err := core.ForcePSD(indefinite)
	if err != nil {
		log.Fatal(err)
	}
	eps := &baseline.EpsilonEigen{}
	if err := eps.Setup(indefinite); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposed zero-clamp: clamped %d eigenvalue(s), Frobenius error %.4f\n", forced.NumClamped, forced.FrobeniusError)
	fmt.Printf("baseline eps-clamp (eps=%.0e): Frobenius error %.4f\n", baseline.DefaultEpsilon, eps.ApproximationError())
	fmt.Printf("proposed error <= baseline error: %v\n\n", forced.FrobeniusError <= eps.ApproximationError()+1e-12)
}

func validateDopplerVarianceEffect(k *cmplxmat.Matrix, blocks int, seed int64) {
	fmt.Println("== E7: Doppler variance-changing effect (Section 5) ==")
	spec := doppler.FilterSpec{M: 1024, NormalizedDoppler: 0.05}
	run := func(assumeUnit bool) (float64, float64) {
		gen, err := core.NewRealTimeGenerator(core.RealTimeConfig{
			Covariance: k, Filter: spec, InputVariance: 0.5, Seed: seed, AssumeUnitVariance: assumeUnit,
		})
		if err != nil {
			log.Fatal(err)
		}
		series := make([][]complex128, k.Rows())
		for b := 0; b < blocks; b++ {
			blk := gen.GenerateBlock()
			for j := range series {
				series[j] = append(series[j], blk.Gaussian[j]...)
			}
		}
		cov, err := stats.SampleCovarianceFromSeries(series)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := stats.CompareCovariance(cov, k)
		if err != nil {
			log.Fatal(err)
		}
		return cmp.MaxAbs, gen.SampleVariance()
	}
	errProposed, sigmaG2 := run(false)
	errAssumed, _ := run(true)
	fmt.Printf("Doppler filter output variance sigma_g^2 (Eq. 19): %.4f (far from the unit value assumed by [6])\n", sigmaG2)
	fmt.Printf("covariance error with Eq. 19 correction (proposed): max |err| = %.4f\n", errProposed)
	fmt.Printf("covariance error with unit-variance assumption [6]: max |err| = %.4f\n", errAssumed)
	fmt.Printf("proposed wins: %v\n\n", errProposed < errAssumed)
}

func validateDopplerAutocorrelation(blocks int, seed int64) {
	fmt.Println("== E8: per-envelope autocorrelation vs J0 (Eq. 16-20) ==")
	spec := doppler.FilterSpec{M: 4096, NormalizedDoppler: 0.05}
	gen, err := core.NewRealTimeGenerator(core.RealTimeConfig{
		Covariance: cmplxmat.Identity(1), Filter: spec, InputVariance: 0.5, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	const maxLag = 100
	acc := make([]float64, maxLag+1)
	for b := 0; b < blocks; b++ {
		blk := gen.GenerateBlock()
		rho, err := stats.LaggedAutocorrelation(blk.Gaussian[0], maxLag)
		if err != nil {
			log.Fatal(err)
		}
		for d := range acc {
			acc[d] += rho[d]
		}
	}
	var worst float64
	fmt.Printf("%6s %12s %12s\n", "lag", "measured", "J0(2*pi*fm*d)")
	for d := 0; d <= maxLag; d += 10 {
		got := acc[d] / float64(blocks)
		want := doppler.TheoreticalAutocorrelation(spec.NormalizedDoppler, d)
		fmt.Printf("%6d %12.4f %12.4f\n", d, got, want)
	}
	for d := 0; d <= maxLag; d++ {
		got := acc[d] / float64(blocks)
		want := doppler.TheoreticalAutocorrelation(spec.NormalizedDoppler, d)
		if dev := math.Abs(got - want); dev > worst {
			worst = dev
		}
	}
	fmt.Printf("worst deviation over lags 0..%d: %.4f\n", maxLag, worst)
}
