// Command validate runs the statistical validation experiments behind
// EXPERIMENTS.md by expressing each one as a declarative scenario and
// driving it through the internal/scenario gate engine (the same engine
// behind cmd/scenariorun and the checked-in scenarios/ specs):
//
//   - E5/E9: snapshot-mode sample covariance versus the desired Eq. (22)
//     matrix, the envelope mean/variance relations of Eq. (14)–(15), and a
//     Kolmogorov–Smirnov test of the Rayleigh envelope distribution;
//   - E6: behaviour on an indefinite covariance matrix — the Cholesky
//     baseline must abort, the proposed zero-clamp forcing must succeed with
//     a Frobenius error no worse than the ε-clamp of Sorooshyari–Daut;
//   - E7: the Doppler variance-changing effect — real-time covariance error
//     with the Eq. (19) correction must be small, while the unit-variance
//     assumption of [6] must leave a demonstrably large error;
//   - E8: per-envelope autocorrelation of the real-time output versus
//     J0(2π·fm·d).
//
// The process exits non-zero when any gate fails, so the command doubles as
// a release check. Tolerances are calibrated for the default -draws/-blocks;
// lowering them may fail gates purely from estimation noise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "random seed")
		draws  = flag.Int("draws", 200000, "snapshot draws for the covariance/moment checks")
		blocks = flag.Int("blocks", 20, "real-time blocks for the Doppler checks")
	)
	flag.Parse()
	os.Exit(run(*seed, *draws, *blocks, os.Stdout, os.Stderr))
}

// run executes the experiment suite and returns the process exit code:
// 0 all gates passed, 1 a gate failed, 2 an experiment could not run at all.
func run(seed int64, draws, blocks int, stdout, stderr io.Writer) int {
	specs := experimentSpecs(seed, draws, blocks)
	results := make([]*scenario.Result, 0, len(specs))
	for _, s := range specs {
		res, err := scenario.Run(s)
		if err != nil {
			fmt.Fprintf(stderr, "validate: %v\n", err)
			return 2
		}
		results = append(results, res)
	}
	report := scenario.NewReport(results)
	fmt.Fprint(stdout, report.Markdown())
	if !report.AllPassed() {
		fmt.Fprintf(stderr, "validate: %d of %d experiments FAILED\n", report.Failed, report.Total)
		return 1
	}
	return 0
}

// experimentSpecs builds the E5–E9 experiments as scenario specs.
func experimentSpecs(seed int64, draws, blocks int) []*scenario.Spec {
	// The indefinite matrix of E6: pairwise correlations no valid covariance
	// can satisfy simultaneously.
	indefinite := [][]scenario.Complex{
		{1, 0.9, -0.9},
		{0.9, 1, 0.9},
		{-0.9, 0.9, 1},
	}
	return []*scenario.Spec{
		{
			Name:        "E5-E9-snapshot-statistics",
			Description: "Snapshot statistics against Eq. (22) and the moment relations Eq. (14)-(15) (Section 4.5).",
			Seed:        seed,
			Model:       scenario.ModelSpec{Type: scenario.ModelEq22},
			Generation:  scenario.GenerationSpec{Mode: scenario.ModeSnapshot, Draws: draws},
			Assertions: []scenario.AssertionSpec{
				{Type: scenario.AssertCovariance, MaxAbsError: 0.02, MaxRelFrobenius: 0.02},
				{Type: scenario.AssertEnvelopeMoments, MeanTolerance: 0.01, VarianceTolerance: 0.02},
				{Type: scenario.AssertRayleighKS, MinPValue: 0.01},
			},
		},
		{
			Name:        "E6-indefinite-covariance",
			Description: "Indefinite covariance handling (Sections 4.2-4.3): Cholesky aborts, zero-clamp forcing succeeds and beats the eps-clamp baseline.",
			Seed:        seed + 1,
			Model:       scenario.ModelSpec{Type: scenario.ModelExplicit, Covariance: indefinite},
			Generation:  scenario.GenerationSpec{Mode: scenario.ModeSnapshot, Draws: min(draws, 20000)},
			Assertions: []scenario.AssertionSpec{
				{Type: scenario.AssertPSDForcing, MinClamped: 1, ExpectCholeskyFailure: true, BeatsEpsilonClamp: true},
				{Type: scenario.AssertCovariance, Against: "forced", MaxAbsError: 0.05},
			},
		},
		{
			Name:        "E7-doppler-variance-corrected",
			Description: "Real-time covariance with the Eq. (19) Doppler-gain correction (Section 5): the error stays small.",
			Seed:        seed + 2,
			Model:       scenario.ModelSpec{Type: scenario.ModelEq22},
			Generation: scenario.GenerationSpec{Mode: scenario.ModeRealtime, Blocks: blocks,
				IDFTPoints: 1024, NormalizedDoppler: 0.05, InputVariance: 0.5},
			Assertions: []scenario.AssertionSpec{
				{Type: scenario.AssertCovariance, MaxAbsError: 0.12},
			},
		},
		{
			Name:        "E7-doppler-unit-variance-defect",
			Description: "The same run under the unit-variance assumption of [6]: the covariance error must be demonstrably large.",
			Seed:        seed + 2,
			Model:       scenario.ModelSpec{Type: scenario.ModelEq22},
			Generation: scenario.GenerationSpec{Mode: scenario.ModeRealtime, Blocks: blocks,
				IDFTPoints: 1024, NormalizedDoppler: 0.05, InputVariance: 0.5, AssumeUnitVariance: true},
			Assertions: []scenario.AssertionSpec{
				{Type: scenario.AssertCovarianceDefect, MinAbsError: 0.2},
			},
		},
		{
			Name:        "E8-doppler-autocorrelation",
			Description: "Per-envelope autocorrelation of the real-time output versus J0(2*pi*fm*d) (Eq. (16)-(20)).",
			Seed:        seed + 3,
			Model:       scenario.ModelSpec{Type: scenario.ModelIdentity, N: 1},
			Generation: scenario.GenerationSpec{Mode: scenario.ModeRealtime, Blocks: blocks,
				IDFTPoints: 4096, NormalizedDoppler: 0.05, InputVariance: 0.5},
			Assertions: []scenario.AssertionSpec{
				{Type: scenario.AssertAutocorrelation, MaxLag: 100, Tolerance: 0.15},
			},
		},
	}
}
