package main

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestExperimentSpecsShape pins the suite's composition: the five
// experiments of EXPERIMENTS.md, each with a seed derived from the base and
// at least one assertion, and the parameters threaded through.
func TestExperimentSpecsShape(t *testing.T) {
	specs := experimentSpecs(10, 5000, 4)
	wantNames := []string{
		"E5-E9-snapshot-statistics",
		"E6-indefinite-covariance",
		"E7-doppler-variance-corrected",
		"E7-doppler-unit-variance-defect",
		"E8-doppler-autocorrelation",
	}
	if len(specs) != len(wantNames) {
		t.Fatalf("experimentSpecs returned %d specs, want %d", len(specs), len(wantNames))
	}
	for i, s := range specs {
		if s.Name != wantNames[i] {
			t.Errorf("spec %d named %q, want %q", i, s.Name, wantNames[i])
		}
		if len(s.Assertions) == 0 {
			t.Errorf("spec %q has no assertions", s.Name)
		}
	}
	if specs[0].Generation.Draws != 5000 {
		t.Errorf("draws not threaded through: %d", specs[0].Generation.Draws)
	}
	if specs[2].Generation.Blocks != 4 {
		t.Errorf("blocks not threaded through: %d", specs[2].Generation.Blocks)
	}
	if specs[0].Seed == specs[1].Seed {
		t.Error("experiments share one seed")
	}
}

// TestRunSmoke drives the command's whole code path at a tiny draw count
// against the real engine: it must complete (exit code 0 or 1 — tolerances
// are calibrated for the default draws, so a statistical miss is acceptable
// here, an engine error is not) and emit the per-experiment markdown report.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run(1, 4000, 3, &stdout, &stderr)
	if code == 2 {
		t.Fatalf("run failed to execute: %s", stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"E6-indefinite-covariance", "E8-doppler-autocorrelation", "scenarios passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunReportJSONShape runs one cheap experiment through the same engine
// the command uses and checks the machine-readable report shape the exit
// code is derived from.
func TestRunReportJSONShape(t *testing.T) {
	specs := experimentSpecs(1, 4000, 3)
	res, err := scenario.Run(specs[1]) // E6: assertions are draw-independent
	if err != nil {
		t.Fatalf("scenario.Run: %v", err)
	}
	report := scenario.NewReport([]*scenario.Result{res})
	doc, err := report.JSON()
	if err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	for _, want := range []string{`"total": 1`, `"E6-indefinite-covariance"`} {
		if !strings.Contains(string(doc), want) {
			t.Errorf("report JSON missing %s:\n%s", want, doc)
		}
	}
	if report.Total != 1 || report.Passed+report.Failed != 1 {
		t.Fatalf("report counts inconsistent: %+v", report)
	}
}
