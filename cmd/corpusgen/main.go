// Command corpusgen expands seeded corpus plans into scenario corpora and
// replays them against the fadingd service (see docs/corpus.md).
//
// Subcommands:
//
//	corpusgen gen -plan plans/corpus-smoke.json -out scenarios/corpus-smoke
//	    expand the plan and write the corpus directory
//	corpusgen verify -plan plans/corpus-smoke.json -dir scenarios/corpus-smoke
//	    regenerate from the plan and byte-compare against the directory
//	corpusgen replay -plan plans/corpus-full.json [-addr http://host:port] [-workers 1,4] [-token]
//	    run the byte-identity and 400-path gates against a live or in-process
//	    fadingd; -token additionally resumes every spec on a second in-process
//	    server via its session token alone (docs/cluster.md)
//	corpusgen list -plan plans/corpus-full.json
//	    print the manifest entries the plan expands to
//
// Exit codes: 0 success, 1 a gate failed (verification diff, replay
// violation), 2 usage or runtime error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/corpus"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: corpusgen <gen|verify|replay|list> [flags]")
		return 2
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], stdout, stderr)
	case "verify":
		return runVerify(args[1:], stdout, stderr)
	case "replay":
		return runReplay(args[1:], stdout, stderr)
	case "list":
		return runList(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "corpusgen: unknown subcommand %q (want gen, verify, replay or list)\n", args[0])
		return 2
	}
}

// expand loads the plan and generates its corpus, the shared front half of
// every subcommand.
func expand(fs *flag.FlagSet, plan string, stderr io.Writer) (*corpus.Corpus, int) {
	if plan == "" {
		fmt.Fprintf(stderr, "corpusgen %s: -plan is required\n", fs.Name())
		return nil, 2
	}
	p, err := corpus.LoadPlan(plan)
	if err != nil {
		fmt.Fprintf(stderr, "corpusgen %s: %v\n", fs.Name(), err)
		return nil, 2
	}
	c, err := corpus.Generate(p)
	if err != nil {
		fmt.Fprintf(stderr, "corpusgen %s: %v\n", fs.Name(), err)
		return nil, 2
	}
	return c, 0
}

func runGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	plan := fs.String("plan", "", "corpus plan file (required)")
	out := fs.String("out", "", "output corpus directory (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "corpusgen gen: -out is required")
		return 2
	}
	c, code := expand(fs, *plan, stderr)
	if code != 0 {
		return code
	}
	if err := c.WriteDir(*out); err != nil {
		fmt.Fprintf(stderr, "corpusgen gen: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s: %d valid, %d invalid, %d session templates (plan %s seed %d)\n",
		*out, len(c.Valid), len(c.Invalid), len(c.Sessions), c.Manifest.Plan, c.Manifest.Seed)
	return 0
}

func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	plan := fs.String("plan", "", "corpus plan file (required)")
	dir := fs.String("dir", "", "corpus directory to verify (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "corpusgen verify: -dir is required")
		return 2
	}
	c, code := expand(fs, *plan, stderr)
	if code != 0 {
		return code
	}
	diffs, err := corpus.VerifyDir(c, *dir)
	if err != nil {
		fmt.Fprintf(stderr, "corpusgen verify: %v\n", err)
		return 2
	}
	if len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintln(stderr, d)
		}
		fmt.Fprintf(stderr, "FAIL: %s differs from the plan expansion in %d files\n", *dir, len(diffs))
		return 1
	}
	fmt.Fprintf(stdout, "OK: %s is byte-identical to the expansion of %s (%d files)\n",
		*dir, *plan, len(c.Files()))
	return 0
}

func runReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	plan := fs.String("plan", "", "corpus plan file (required)")
	addr := fs.String("addr", "", "live fadingd base URL (default: in-process servers)")
	workers := fs.String("workers", "1,4", "comma-separated in-process worker counts (ignored with -addr)")
	tokenResume := fs.Bool("token", false, "also resume every spec on a second server via its session token only (in-process; see docs/cluster.md)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c, code := expand(fs, *plan, stderr)
	if code != 0 {
		return code
	}
	opts := corpus.ReplayOptions{Addr: *addr, TokenResume: *tokenResume}
	for _, w := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || n < 1 {
			fmt.Fprintf(stderr, "corpusgen replay: bad -workers entry %q\n", w)
			return 2
		}
		opts.Workers = append(opts.Workers, n)
	}
	report, err := corpus.Replay(c, opts)
	if err != nil {
		fmt.Fprintf(stderr, "corpusgen replay: %v\n", err)
		return 2
	}
	tokenNote := ""
	if *tokenResume {
		tokenNote = fmt.Sprintf(", %d token resumes", report.TokenResumes)
	}
	fmt.Fprintf(stdout, "replayed %d specs against %d servers: %d byte-identity passes, %d invalid specs rejected%s\n",
		report.Replayed, report.Servers, report.Passes, report.Rejected, tokenNote)
	if !report.OK() {
		for _, f := range report.Failures {
			fmt.Fprintln(stderr, f)
		}
		fmt.Fprintf(stderr, "FAIL: %d replay violations\n", len(report.Failures))
		return 1
	}
	return 0
}

func runList(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	plan := fs.String("plan", "", "corpus plan file (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c, code := expand(fs, *plan, stderr)
	if code != 0 {
		return code
	}
	for _, e := range c.Manifest.Entries {
		switch e.Kind {
		case corpus.KindScenario:
			replay := ""
			if e.Replayable {
				replay = " replayable"
			}
			fmt.Fprintf(stdout, "%-12s %s mode=%s method=%s fading=%s%s\n",
				e.Kind, e.Name, e.Mode, e.Method, e.Fading, replay)
		default:
			fmt.Fprintf(stdout, "%-12s %s class=%s\n", e.Kind, e.Name, e.Class)
		}
	}
	return 0
}
