package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testPlanJSON is a small fast plan exercising every subcommand.
const testPlanJSON = `{
  "name": "cli",
  "seed": 5,
  "valid": 6,
  "invalid": 4,
  "generation": {"draws": 8, "blocks": 4, "idft_points": 128}
}`

// replayPlanJSON keeps the CLI replay test cheap: realtime-only, so every
// valid entry replays, and one server worker count.
const replayPlanJSON = `{
  "name": "clirp",
  "seed": 6,
  "valid": 2,
  "invalid": 2,
  "axes": {"modes": ["realtime"]},
  "generation": {"blocks": 4, "idft_points": 128}
}`

func writePlan(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestGenVerifyRoundTrip is the CLI determinism gate: gen writes a corpus,
// verify regenerates from the same plan and must find it byte-identical; a
// tampered file must flip verify to exit 1 and be named in the diff.
func TestGenVerifyRoundTrip(t *testing.T) {
	plan := writePlan(t, testPlanJSON)
	out := filepath.Join(t.TempDir(), "corpus")

	code, stdout, stderr := runCLI(t, "gen", "-plan", plan, "-out", out)
	if code != 0 {
		t.Fatalf("gen = %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "6 valid, 4 invalid") {
		t.Errorf("gen summary missing counts: %q", stdout)
	}

	code, stdout, stderr = runCLI(t, "verify", "-plan", plan, "-dir", out)
	if code != 0 {
		t.Fatalf("verify on fresh gen = %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "byte-identical") {
		t.Errorf("verify summary: %q", stdout)
	}

	// Tamper with the manifest and expect a named diff and exit 1.
	manifest := filepath.Join(out, "manifest.json")
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, append(data, ' '), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "verify", "-plan", plan, "-dir", out)
	if code != 1 {
		t.Fatalf("verify after tampering = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "changed: manifest.json") {
		t.Errorf("verify diff does not name the tampered file:\n%s", stderr)
	}
}

// TestGoldenSmokeCorpusVerifies runs the real CLI verify against the
// committed golden mini-corpus — the same gate CI runs.
func TestGoldenSmokeCorpusVerifies(t *testing.T) {
	code, _, stderr := runCLI(t,
		"verify", "-plan", "../../plans/corpus-smoke.json", "-dir", "../../scenarios/corpus-smoke")
	if code != 0 {
		t.Fatalf("golden corpus verify = %d (regenerate with: go run ./cmd/corpusgen gen -plan plans/corpus-smoke.json -out scenarios/corpus-smoke)\nstderr:\n%s",
			code, stderr)
	}
}

// TestListPrintsManifest covers the list subcommand: every manifest entry
// appears, scenario rows carry their axis summary, invalid rows their class.
func TestListPrintsManifest(t *testing.T) {
	plan := writePlan(t, testPlanJSON)
	code, stdout, stderr := runCLI(t, "list", "-plan", plan)
	if code != 0 {
		t.Fatalf("list = %d\nstderr:\n%s", code, stderr)
	}
	if got := strings.Count(stdout, "\n"); got != 10 {
		t.Errorf("list printed %d lines, want 10 (6 valid + 4 invalid)", got)
	}
	for _, want := range []string{"scenario", "mode=", "method=", "fading=", "invalid", "class="} {
		if !strings.Contains(stdout, want) {
			t.Errorf("list output missing %q:\n%s", want, stdout)
		}
	}
}

// TestReplaySubcommand runs the full CLI replay path against an in-process
// server: byte-identity passes and 400 rejections both reported, exit 0.
func TestReplaySubcommand(t *testing.T) {
	plan := writePlan(t, replayPlanJSON)
	code, stdout, stderr := runCLI(t, "replay", "-plan", plan, "-workers", "1")
	if code != 0 {
		t.Fatalf("replay = %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "replayed 2 specs against 1 servers") {
		t.Errorf("replay summary: %q", stdout)
	}
	if !strings.Contains(stdout, "2 invalid specs rejected") {
		t.Errorf("replay summary missing rejections: %q", stdout)
	}
}

// TestUsageErrors is the exit-2 table: unknown subcommands, missing required
// flags, unparseable or invalid plans.
func TestUsageErrors(t *testing.T) {
	goodPlan := writePlan(t, testPlanJSON)
	badPlan := writePlan(t, `{"name": "x", "seed": 1, "valid": 4, "axes": {"models": ["toeplitz"]}}`)
	cases := []struct {
		name       string
		args       []string
		wantStderr string
	}{
		{"no-args", nil, "usage"},
		{"unknown-subcommand", []string{"frobnicate"}, "unknown subcommand"},
		{"gen-missing-out", []string{"gen", "-plan", goodPlan}, "-out is required"},
		{"gen-missing-plan", []string{"gen", "-out", "x"}, "-plan is required"},
		{"verify-missing-dir", []string{"verify", "-plan", goodPlan}, "-dir is required"},
		{"invalid-plan-rejected", []string{"list", "-plan", badPlan}, "unknown model type"},
		{"missing-plan-file", []string{"list", "-plan", "no/such/plan.json"}, "no such file"},
		{"replay-bad-workers", []string{"replay", "-plan", goodPlan, "-workers", "0"}, "bad -workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("run(%v) = %d, want 2\nstderr:\n%s", tc.args, code, stderr)
			}
			if !strings.Contains(stderr, tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr)
			}
		})
	}
}
