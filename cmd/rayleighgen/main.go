// Command rayleighgen generates correlated Rayleigh fading envelopes to
// stdout as CSV, for use as channel traces in external link-level
// simulators.
//
// Two modes are available:
//
//	-mode snapshot   independent draws (one row per draw);
//	-mode realtime   time-correlated blocks with the Jakes autocorrelation
//	                 (one row per time sample).
//
// The desired correlation is specified either as a uniform correlation
// coefficient between all pairs (-rho), or through the spectral model flags
// (-spacing, -doppler, -delay-spread) that mirror Section 2 of the paper.
//
// The -method flag selects the generation backend: the paper's generalized
// algorithm (default) or one of the conventional methods it reviews (run
// "scenariorun -methods" for the catalog); methods that cannot express the
// requested correlation fail with their documented error.
//
// Examples:
//
//	rayleighgen -n 4 -rho 0.7 -count 1000
//	rayleighgen -n 2 -rho 0.6 -method ertel_reed -count 1000
//	rayleighgen -mode realtime -n 3 -spacing 200e3 -doppler 50 -delay-spread 1e-6 -count 4096
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	rayleigh "repro"
	"repro/internal/cmplxmat"
	"repro/internal/corrmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rayleighgen: ")

	var (
		mode        = flag.String("mode", "snapshot", `generation mode: "snapshot" or "realtime"`)
		n           = flag.Int("n", 3, "number of correlated envelopes")
		count       = flag.Int("count", 1000, "number of rows to emit (snapshots or time samples)")
		rho         = flag.Float64("rho", 0, "uniform correlation coefficient between all pairs (used when spacing is 0)")
		power       = flag.Float64("power", 1, "complex Gaussian power per envelope")
		spacing     = flag.Float64("spacing", 0, "carrier spacing in Hz for the spectral model (0 disables)")
		dopplerHz   = flag.Float64("doppler", 50, "maximum Doppler shift Fm in Hz (spectral model)")
		delaySpread = flag.Float64("delay-spread", 1e-6, "RMS delay spread in seconds (spectral model)")
		fm          = flag.Float64("fm", 0.05, "normalized Doppler Fm/Fs (realtime mode)")
		idft        = flag.Int("idft", 4096, "IDFT length M (realtime mode)")
		seed        = flag.Int64("seed", 1, "random seed")
		envOnly     = flag.Bool("envelopes-only", false, "emit only the envelopes, not the complex Gaussians")
		method      = flag.String("method", "", `generation method ("generalized" default; see scenariorun -methods)`)
	)
	flag.Parse()

	if *n <= 0 || *count <= 0 {
		log.Fatal("n and count must be positive")
	}

	covariance, err := buildCovariance(*n, *rho, *power, *spacing, *dopplerHz, *delaySpread)
	if err != nil {
		log.Fatal(err)
	}
	rows := make([][]complex128, covariance.Rows())
	for i := range rows {
		rows[i] = covariance.Row(i)
	}

	w := os.Stdout
	writeHeader(w, *n, *envOnly)

	switch *mode {
	case "snapshot":
		gen, err := rayleigh.New(rayleigh.Config{Covariance: rows, Seed: *seed, Method: *method})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *count; i++ {
			s := gen.Snapshot()
			writeRow(w, i, s.Gaussian, s.Envelopes, *envOnly)
		}
	case "realtime":
		stream, err := rayleigh.NewStream(rayleigh.RealTimeConfig{
			Covariance:        rows,
			IDFTPoints:        *idft,
			NormalizedDoppler: *fm,
			InputVariance:     0.5,
			Seed:              *seed,
			Method:            *method,
		})
		if err != nil {
			log.Fatal(err)
		}
		cursor, err := stream.NewCursor()
		if err != nil {
			log.Fatal(err)
		}
		var block rayleigh.Block
		emitted := 0
		for emitted < *count {
			if err := cursor.Next(&block); err != nil {
				log.Fatal(err)
			}
			for l := 0; l < stream.BlockLength() && emitted < *count; l++ {
				gauss := make([]complex128, *n)
				env := make([]float64, *n)
				for j := 0; j < *n; j++ {
					gauss[j] = block.Gaussian[j][l]
					env[j] = block.Envelopes[j][l]
				}
				writeRow(w, emitted, gauss, env, *envOnly)
				emitted++
			}
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// buildCovariance constructs the desired covariance matrix from the flags:
// the spectral model when a carrier spacing is given, otherwise a uniform
// correlation coefficient.
func buildCovariance(n int, rho, power, spacing, dopplerHz, delaySpread float64) (*cmplxmat.Matrix, error) {
	if spacing > 0 {
		delays := make([][]float64, n)
		for i := range delays {
			delays[i] = make([]float64, n)
		}
		model, err := corrmodel.NewUniformSpectral(corrmodel.UniformSpectralParams{
			N:                n,
			CarrierSpacingHz: spacing,
			MaxDopplerHz:     dopplerHz,
			RMSDelaySpread:   delaySpread,
			Power:            power,
			PairDelays:       delays,
		})
		if err != nil {
			return nil, err
		}
		res, err := model.Covariance()
		if err != nil {
			return nil, err
		}
		return res.Matrix, nil
	}
	if rho < -1 || rho > 1 {
		return nil, fmt.Errorf("rho %g outside [-1, 1]", rho)
	}
	k := cmplxmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				k.Set(i, j, complex(power, 0))
			} else {
				k.Set(i, j, complex(rho*power, 0))
			}
		}
	}
	return k, nil
}

func writeHeader(w *os.File, n int, envOnly bool) {
	fmt.Fprint(w, "index")
	for j := 1; j <= n; j++ {
		if !envOnly {
			fmt.Fprintf(w, ",re%d,im%d", j, j)
		}
		fmt.Fprintf(w, ",envelope%d", j)
	}
	fmt.Fprintln(w)
}

func writeRow(w *os.File, idx int, gauss []complex128, env []float64, envOnly bool) {
	fmt.Fprintf(w, "%d", idx)
	for j := range env {
		if !envOnly {
			fmt.Fprintf(w, ",%.6f,%.6f", real(gauss[j]), imag(gauss[j]))
		}
		fmt.Fprintf(w, ",%.6f", env[j])
	}
	fmt.Fprintln(w)
}
