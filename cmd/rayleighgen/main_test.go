package main

import (
	"math/cmplx"
	"testing"

	"repro/internal/cmplxmat"
)

func TestBuildCovarianceUniformRho(t *testing.T) {
	k, err := buildCovariance(3, 0.4, 2, 0, 50, 1e-6)
	if err != nil {
		t.Fatalf("buildCovariance: %v", err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex(0.8, 0)
			if i == j {
				want = 2
			}
			if cmplx.Abs(k.At(i, j)-want) > 1e-12 {
				t.Errorf("K(%d,%d) = %v, want %v", i, j, k.At(i, j), want)
			}
		}
	}
}

func TestBuildCovarianceRejectsBadRho(t *testing.T) {
	if _, err := buildCovariance(2, 1.5, 1, 0, 50, 1e-6); err == nil {
		t.Errorf("rho > 1 did not error")
	}
	if _, err := buildCovariance(2, -1.5, 1, 0, 50, 1e-6); err == nil {
		t.Errorf("rho < -1 did not error")
	}
}

func TestBuildCovarianceSpectralMode(t *testing.T) {
	// With a 200 kHz spacing and the paper's channel parameters the adjacent
	// pair correlation must match the Eq. (22) real part at zero delay.
	k, err := buildCovariance(3, 0, 1, 200e3, 50, 1e-6)
	if err != nil {
		t.Fatalf("buildCovariance: %v", err)
	}
	if !k.IsHermitian(1e-12) {
		t.Errorf("spectral covariance is not Hermitian")
	}
	pd, err := cmplxmat.IsPositiveDefinite(k, 1e-10)
	if err != nil || !pd {
		t.Errorf("spectral covariance not positive definite: %v %v", pd, err)
	}
	// Zero arrival delays: J0(0)=1, so |K(0,1)| = 1/sqrt(1+(2π·Δf·στ)²)·
	// sqrt(1+(Δω στ)²)… more simply the magnitude must decay with separation.
	if cmplx.Abs(k.At(0, 2)) >= cmplx.Abs(k.At(0, 1)) {
		t.Errorf("correlation does not decay with carrier separation")
	}
}
