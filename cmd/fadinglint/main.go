// Command fadinglint runs the repository's static-analysis suite: five
// analyzers (detrand, canonfields, shardlock, allocfree, errcodes) enforcing
// the determinism, canonical-hash, lock-discipline, zero-allocation and
// error-contract invariants that the runtime tests can only spot-check. See
// docs/linting.md for the catalog and directive syntax.
//
// Two modes share one binary:
//
//	fadinglint ./...                 standalone: load, analyze, report
//	go vet -vettool=fadinglint ./... toolchain-driven, test files included
//
// Exit codes follow the scenariorun convention: 0 clean, 1 findings (or a
// failed analysis), 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/checker"
	"repro/internal/lint/load"
	"repro/internal/lint/unitchecker"
)

func main() {
	// A cmd/go vet invocation (-V=full, -flags, or a .cfg unit file) is
	// dispatched before flag parsing: the protocol's flags are not ours.
	if unitchecker.IsVetInvocation(os.Args[1:]) {
		os.Exit(unitchecker.Main(os.Args[0], os.Args[1:], lint.Analyzers()))
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fadinglint [-list] [packages]\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which fadinglint) [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the fadinglint analyzer suite (docs/linting.md) over the named\n")
		fmt.Fprintf(os.Stderr, "Go packages (default ./...). Exit code 0 clean, 1 findings, 2 usage.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadinglint: %v\n", err)
		os.Exit(2)
	}
	total := 0
	for _, pkg := range pkgs {
		findings, err := checker.Run(&checker.Target{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		}, lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "fadinglint: %v\n", err)
			os.Exit(1)
		}
		checker.Print(os.Stdout, findings)
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "fadinglint: %d finding(s)\n", total)
		os.Exit(1)
	}
}
