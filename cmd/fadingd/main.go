// Command fadingd is the streaming channel-simulation server: a long-running
// HTTP service that turns the library's deterministic fading engine into a
// shared facility. Clients POST a channel spec (the scenario files' model
// vocabulary), receive a session ID, and stream blocks of correlated
// Rayleigh envelopes as NDJSON or compact binary frames, resuming at any
// block with ?from=k. The wire protocol, spec schema and capacity tuning are
// documented in docs/service.md; a load generator lives in
// cmd/fadingd/loadtest.
//
// Usage:
//
//	fadingd [-addr :8080] [-workers N] [-queue N] [-window N]
//	        [-session-ttl 5m] [-max-sessions 256] [-shards N] [-cache-specs 256]
//	        [-max-envelopes 64] [-max-blocks 1048576] [-max-idft 65536]
//	        [-read-header-timeout 10s] [-read-timeout 1m] [-write-timeout 0]
//	        [-idle-timeout 2m] [-create-timeout 30s]
//	        [-token-key id:hexsecret[,id2:hexsecret...]] [-token-key-file path]
//	        [-token-ttl 1h]
//	fadingd deploy [-replicas 3] [-port 8080] [-o deploy]
//
// The timeout flags bound how long a client may hold a connection without
// progress (slowloris defense) and how long one session create may spend in
// spec setup; see the "Overload & retry semantics" section of docs/service.md
// for the 429/503/Retry-After contract they feed.
//
// With -token-key (or -token-key-file), session creates return a signed
// self-describing token and any replica sharing a verifying key serves any
// block of the session — the stateless scale-out contract of docs/cluster.md.
// The `deploy` verb emits a ready-to-run docker-compose recipe: N replicas
// sharing a signing key behind a round-robin proxy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/token"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "deploy" {
		if err := runDeploy(os.Args[2:], os.Stdout); err != nil {
			log.Fatalf("fadingd deploy: %v", err)
		}
		return
	}
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "generation pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "pool job queue depth (0 = 2x workers)")
		window       = flag.Int("window", 0, "per-stream in-flight block budget (0 = 4)")
		sessionTTL   = flag.Duration("session-ttl", 5*time.Minute, "evict sessions idle longer than this")
		maxSessions  = flag.Int("max-sessions", 256, "session table capacity")
		shards       = flag.Int("shards", 0, "session table shard count, rounded up to a power of two (0 = cover GOMAXPROCS)")
		cacheSpecs   = flag.Int("cache-specs", 0, "max cached per-spec setup artifacts shared across sessions (0 = 256, negative disables)")
		maxEnvelopes = flag.Int("max-envelopes", 0, "largest model N a spec may request (0 = 64)")
		maxBlocks    = flag.Int("max-blocks", 0, "longest stream a spec may request (0 = 1<<20)")
		maxIDFT      = flag.Int("max-idft", 0, "largest block length a spec may request (0 = 1<<16)")

		// HTTP server timeouts. The write timeout defaults to 0 (disabled)
		// on purpose: streams are long-lived by design and a write deadline
		// covers the whole response, so any finite default would cut slow but
		// legitimate consumers — set it only on deployments that cap stream
		// length. The others default on: header and body reads are small, and
		// idle keep-alive connections are cheap to re-establish.
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "max time to read request headers (slowloris defense)")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "max time to read a full request including body")
		writeTimeout      = flag.Duration("write-timeout", 0, "max time to write a full response (0 = unlimited; finite values cut long streams)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time between requests")
		createTimeout     = flag.Duration("create-timeout", 30*time.Second, "max spec setup time per session create before 503 + Retry-After (0 = unlimited)")

		// Session-token signing. One shared keyring turns a fleet of fadingd
		// processes into interchangeable replicas (docs/cluster.md).
		tokenKey     = flag.String("token-key", "", "session-token keyring, id:hexsecret[,id2:hexsecret...]; first key signs, all verify (empty disables tokens)")
		tokenKeyFile = flag.String("token-key-file", "", "file holding the -token-key value (keeps secrets out of argv)")
		tokenTTL     = flag.Duration("token-ttl", time.Hour, "session-token validity from mint time (negative = no expiry)")
	)
	flag.Parse()

	keyring, err := loadKeyring(*tokenKey, *tokenKeyFile)
	if err != nil {
		log.Fatalf("fadingd: %v", err)
	}

	svc := service.New(service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		Window:        *window,
		SessionTTL:    *sessionTTL,
		MaxSessions:   *maxSessions,
		Shards:        *shards,
		CacheSpecs:    *cacheSpecs,
		CreateTimeout: *createTimeout,
		Keyring:       keyring,
		TokenTTL:      *tokenTTL,
		Limits: service.Limits{
			MaxEnvelopes:  *maxEnvelopes,
			MaxBlocks:     *maxBlocks,
			MaxIDFTPoints: *maxIDFT,
		},
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("fadingd listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("fadingd: %s, shutting down", sig)
	case err := <-errc:
		log.Fatalf("fadingd: serve: %v", err)
	}

	// Graceful shutdown: stop the streams at their next block boundary, let
	// the HTTP server drain, then tear down sessions and the worker pool.
	svc.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "fadingd: shutdown: %v\n", err)
	}
	svc.Close()
	log.Printf("fadingd: bye")
}

// loadKeyring resolves the -token-key/-token-key-file pair into a keyring;
// both empty means tokens stay disabled.
func loadKeyring(keySpec, keyFile string) (*token.Keyring, error) {
	if keyFile != "" {
		if keySpec != "" {
			return nil, errors.New("-token-key and -token-key-file are mutually exclusive")
		}
		data, err := os.ReadFile(keyFile)
		if err != nil {
			return nil, fmt.Errorf("read -token-key-file: %w", err)
		}
		keySpec = strings.TrimSpace(string(data))
	}
	if keySpec == "" {
		return nil, nil
	}
	kr, err := token.ParseKeyring(keySpec)
	if err != nil {
		return nil, err
	}
	return kr, nil
}
