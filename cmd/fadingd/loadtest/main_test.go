package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// newBackend starts an in-process fadingd behind httptest and returns its
// base URL.
func newBackend(t *testing.T) string {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts.URL
}

// TestRunStreamMode smoke-tests the default mode end to end against a tiny
// server: the report must count real traffic and round-trip through JSON
// with the documented shape.
func TestRunStreamMode(t *testing.T) {
	r, err := run(options{
		addr:     newBackend(t),
		sessions: 2,
		duration: 300 * time.Millisecond,
		perReq:   4,
		idft:     64,
		format:   service.FormatBinary,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Mode != "stream" || r.InProcess {
		t.Fatalf("report mode/in_process = %q/%v, want stream/false", r.Mode, r.InProcess)
	}
	if r.Blocks == 0 || r.Bytes == 0 || r.Requests == 0 {
		t.Fatalf("no traffic recorded: %+v", r)
	}
	if r.BlocksPerSec <= 0 || r.SamplesPerSec <= 0 {
		t.Fatalf("derived rates missing: %+v", r)
	}
	if r.BlockLatency == nil || r.BlockLatency.Count == 0 {
		t.Fatalf("block latency percentiles missing: %+v", r)
	}
	if int64(r.BlockLatency.Count) != r.Blocks {
		t.Errorf("latency sample count %d != blocks %d", r.BlockLatency.Count, r.Blocks)
	}
	if r.BlockLatency.P50Ms > r.BlockLatency.P95Ms || r.BlockLatency.P95Ms > r.BlockLatency.P99Ms {
		t.Errorf("percentiles not monotone: %+v", r.BlockLatency)
	}

	doc, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(doc, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"addr", "mode", "seconds", "blocks", "blocks_per_sec", "block_latency"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, doc)
		}
	}
	if _, ok := decoded["churn"]; ok {
		t.Errorf("stream-mode report carries a churn section: %s", doc)
	}
}

// TestRunChurnMode smoke-tests the churn mode: both phases must create
// sessions, the warm phase must be measurably faster than the cold one
// (every warm create after the first hits the setup cache), and the JSON
// report must carry the churn section.
func TestRunChurnMode(t *testing.T) {
	r, err := run(options{
		addr:     newBackend(t),
		sessions: 2,
		duration: 1200 * time.Millisecond,
		idft:     1024,
		churn:    true,
		churnN:   16,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Mode != "churn" || r.Churn == nil {
		t.Fatalf("churn report missing: %+v", r)
	}
	c := r.Churn
	if c.ColdCreates == 0 || c.WarmCreates == 0 {
		t.Fatalf("churn phases idle: %+v", c)
	}
	// The acceptance floor (>= 5x) is asserted at full duration in CI; a
	// sub-second smoke run still must show the cache winning outright.
	if c.WarmSpeedup <= 1 {
		t.Fatalf("warm creates (%.0f/s) not faster than cold (%.0f/s)", c.WarmCreatesPerSec, c.ColdCreatesPerSec)
	}
	if int64(c.ColdCreateLatency.Count) != c.ColdCreates || int64(c.WarmCreateLatency.Count) != c.WarmCreates {
		t.Fatalf("create latency sample counts do not match creates: %+v", c)
	}
	// The percentile digest must agree with the rate measurement on which
	// phase is cheaper: a warm create hits the setup cache, so its median
	// round trip cannot be slower than the cold median.
	if c.WarmCreateLatency.P50Ms > c.ColdCreateLatency.P50Ms {
		t.Errorf("warm create p50 %.3f ms above cold p50 %.3f ms",
			c.WarmCreateLatency.P50Ms, c.ColdCreateLatency.P50Ms)
	}

	doc, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var decoded struct {
		Churn struct {
			ColdCreatesPerSec float64 `json:"cold_creates_per_sec"`
			WarmCreatesPerSec float64 `json:"warm_creates_per_sec"`
			WarmSpeedup       float64 `json:"warm_speedup"`
			ColdCreateLatency struct {
				Count int     `json:"count"`
				P95Ms float64 `json:"p95_ms"`
			} `json:"cold_create_latency"`
			WarmCreateLatency struct {
				Count int     `json:"count"`
				P95Ms float64 `json:"p95_ms"`
			} `json:"warm_create_latency"`
		} `json:"churn"`
	}
	if err := json.Unmarshal(doc, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Churn.WarmSpeedup != c.WarmSpeedup {
		t.Fatalf("churn section did not round-trip: %s", doc)
	}
	if decoded.Churn.ColdCreateLatency.Count == 0 || decoded.Churn.WarmCreateLatency.Count == 0 {
		t.Fatalf("create latency digests did not round-trip: %s", doc)
	}
}

// TestChurnSpecIsAccepted guards the churn-mode spec literal against drift
// in the spec schema: it must parse and validate under the default limits.
func TestChurnSpecIsAccepted(t *testing.T) {
	base := newBackend(t)
	info, err := createOnce(base, churnSpec(16, 1024, 1))
	if err != nil {
		t.Fatalf("churn spec rejected: %v", err)
	}
	if info.N != 16 || info.Blocks != 16 {
		t.Fatalf("unexpected geometry: %+v", info)
	}
	if err := deleteSession(base, info.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
}
