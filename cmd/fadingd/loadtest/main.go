// Command loadtest is the fadingd load generator: it opens many concurrent
// sessions, streams blocks as fast as the server will serve them for a fixed
// duration, and reports sustained throughput (blocks/s, samples/s, MB/s) as
// JSON so future changes can gate on regressions.
//
// By default it starts an in-process fadingd on a loopback port, which
// measures the service stack (session manager, worker pool, framing) without
// network noise; point -addr at a running server to measure a deployment.
//
// Usage:
//
//	loadtest [-addr http://host:port] [-sessions 4] [-duration 5s]
//	         [-blocks-per-request 32] [-idft 1024] [-format bin]
//	         [-workers N] [-o report.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// report is the JSON document written at exit.
type report struct {
	Addr             string  `json:"addr"`
	InProcess        bool    `json:"in_process"`
	Sessions         int     `json:"sessions"`
	Format           string  `json:"format"`
	IDFTPoints       int     `json:"idft_points"`
	BlocksPerRequest int     `json:"blocks_per_request"`
	Seconds          float64 `json:"seconds"`
	Blocks           int64   `json:"blocks"`
	Samples          int64   `json:"samples"`
	Bytes            int64   `json:"bytes"`
	BlocksPerSec     float64 `json:"blocks_per_sec"`
	SamplesPerSec    float64 `json:"samples_per_sec"`
	MBPerSec         float64 `json:"mb_per_sec"`
	Requests         int64   `json:"requests"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "base URL of a running fadingd (empty = start one in-process)")
		sessions = flag.Int("sessions", 4, "concurrent sessions")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		perReq   = flag.Int("blocks-per-request", 32, "blocks streamed per request (resume loops the session)")
		idft     = flag.Int("idft", 1024, "block length in samples")
		format   = flag.String("format", service.FormatBinary, "stream format: bin or ndjson")
		workers  = flag.Int("workers", 0, "in-process server pool size (0 = GOMAXPROCS)")
		out      = flag.String("o", "", "also write the JSON report to this file")
	)
	flag.Parse()

	base := *addr
	inProcess := base == ""
	if inProcess {
		svc := service.New(service.Config{Workers: *workers})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("loadtest: listen: %v", err)
		}
		httpSrv := &http.Server{Handler: svc.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
	}

	var blocks, samples, bytesRead, requests atomic.Int64
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSession(base, int64(i), *idft, *perReq, *format, deadline,
				&blocks, &samples, &bytesRead, &requests); err != nil {
				log.Printf("loadtest: session %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	r := report{
		Addr:             base,
		InProcess:        inProcess,
		Sessions:         *sessions,
		Format:           *format,
		IDFTPoints:       *idft,
		BlocksPerRequest: *perReq,
		Seconds:          elapsed,
		Blocks:           blocks.Load(),
		Samples:          samples.Load(),
		Bytes:            bytesRead.Load(),
		Requests:         requests.Load(),
	}
	if elapsed > 0 {
		r.BlocksPerSec = float64(r.Blocks) / elapsed
		r.SamplesPerSec = float64(r.Samples) / elapsed
		r.MBPerSec = float64(r.Bytes) / elapsed / (1 << 20)
	}
	doc, _ := json.MarshalIndent(r, "", "  ")
	doc = append(doc, '\n')
	os.Stdout.Write(doc)
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatalf("loadtest: write %s: %v", *out, err)
		}
	}
	if r.Blocks == 0 {
		log.Fatal("loadtest: no blocks served")
	}
}

// driveSession opens one session and streams ranges of it in a resume loop
// until the deadline, accumulating the counters.
func driveSession(base string, seed int64, idft, perReq int, format string, deadline time.Time,
	blocks, samples, bytesRead, requests *atomic.Int64) error {
	spec := fmt.Sprintf(`{"model": {"type": "eq22"}, "seed": %d, "blocks": %d, "idft_points": %d}`,
		seed, 1<<20, idft)
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create session: status %d: %s", resp.StatusCode, body)
	}
	var info struct {
		ID          string `json:"id"`
		N           int    `json:"n"`
		BlockLength int    `json:"block_length"`
		Blocks      int    `json:"blocks"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return fmt.Errorf("decode session info: %w", err)
	}

	from := 0
	for time.Now().Before(deadline) {
		if from+perReq > info.Blocks {
			from = 0
		}
		url := fmt.Sprintf("%s/v1/sessions/%s/stream?format=%s&from=%d&count=%d",
			base, info.ID, format, from, perReq)
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		requests.Add(1)
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("stream: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		got, n, err := consume(resp.Body, format)
		resp.Body.Close()
		if err != nil {
			return err
		}
		blocks.Add(got)
		samples.Add(got * int64(info.N) * int64(info.BlockLength))
		bytesRead.Add(n)
		from += perReq
	}
	return nil
}

// consume drains one stream response, returning the block count and bytes.
func consume(r io.Reader, format string) (int64, int64, error) {
	cr := &countingReader{r: r}
	var blocks int64
	if format == service.FormatBinary {
		for {
			_, _, _, err := service.DecodeBinaryFrame(cr)
			if err == io.EOF {
				return blocks, cr.n, nil
			}
			if err != nil {
				return blocks, cr.n, err
			}
			blocks++
		}
	}
	sc := bufio.NewScanner(cr)
	sc.Buffer(nil, 1<<26)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			blocks++
		}
	}
	return blocks, cr.n, sc.Err()
}

// countingReader tracks payload bytes received.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
