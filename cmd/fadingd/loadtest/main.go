// Command loadtest is the fadingd load generator. Its default (stream) mode
// opens many concurrent sessions, streams blocks as fast as the server will
// serve them for a fixed duration, and reports sustained throughput
// (blocks/s, samples/s, MB/s) plus block-latency percentiles as JSON so
// future changes can gate on regressions. Its churn mode (-churn) measures
// the session-creation path instead: a cold phase where every create carries
// a fresh spec (each pays the full O(N³) setup) and a warm phase where every
// create shares one spec (each hits the server's content-addressed setup
// cache), reporting creates/s and create-latency percentiles for both and
// the warm/cold speedup. Percentiles come from the same internal/slolab
// sampler the SLO lab uses, so both tools digest latency identically
// (nearest-rank, milliseconds). Its scale mode (-replicas "1,2,4") measures
// horizontal scaling instead: for each replica count it starts that many
// token-sharing in-process replicas, creates sessions on the first one only
// and streams round-robin across all of them via the session tokens,
// reporting blocks/s, speedup and efficiency per point — the stateless
// scale-out contract of docs/cluster.md under load.
//
// By default it starts an in-process fadingd on a loopback port, which
// measures the service stack (session manager, worker pool, framing) without
// network noise; point -addr at a running server to measure a deployment.
//
// Usage:
//
//	loadtest [-addr http://host:port] [-sessions 4] [-duration 5s]
//	         [-blocks-per-request 32] [-idft 1024] [-format bin]
//	         [-workers N] [-churn] [-churn-n 24]
//	         [-replicas 1,2,4] [-scale-blocks 96] [-o report.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/slolab"
)

// options collects the flag values so the whole generator is drivable from
// tests.
type options struct {
	addr        string
	sessions    int
	duration    time.Duration
	perReq      int
	idft        int
	format      string
	workers     int
	churn       bool
	churnN      int
	replicas    string
	scaleBlocks int
}

// report is the JSON document written at exit.
type report struct {
	Addr             string  `json:"addr"`
	InProcess        bool    `json:"in_process"`
	Mode             string  `json:"mode"`
	Sessions         int     `json:"sessions"`
	Format           string  `json:"format,omitempty"`
	IDFTPoints       int     `json:"idft_points,omitempty"`
	BlocksPerRequest int     `json:"blocks_per_request,omitempty"`
	Seconds          float64 `json:"seconds"`
	Blocks           int64   `json:"blocks,omitempty"`
	Samples          int64   `json:"samples,omitempty"`
	Bytes            int64   `json:"bytes,omitempty"`
	BlocksPerSec     float64 `json:"blocks_per_sec,omitempty"`
	SamplesPerSec    float64 `json:"samples_per_sec,omitempty"`
	MBPerSec         float64 `json:"mb_per_sec,omitempty"`
	Requests         int64   `json:"requests,omitempty"`
	// BlockLatency digests the inter-frame gaps of the stream mode: the time
	// from one decoded block to the next within a response, which is the
	// cadence a consumer of the stream actually experiences.
	BlockLatency *slolab.LatencySummary `json:"block_latency,omitempty"`
	Churn        *churnReport           `json:"churn,omitempty"`
	// Scaling is the -replicas mode's horizontal-scaling report: blocks/s,
	// speedup and efficiency per replica count, measured by the same slolab
	// sweep the horizontal-scaling SLO scenario gates.
	Scaling *slolab.ScalingReport `json:"scaling,omitempty"`
}

// churnReport is the session-churn section: creates/s with every create
// missing the setup cache (cold) versus every create hitting it (warm).
type churnReport struct {
	ModelN            int                   `json:"model_n"`
	ColdCreates       int64                 `json:"cold_creates"`
	ColdCreatesPerSec float64               `json:"cold_creates_per_sec"`
	ColdCreateLatency slolab.LatencySummary `json:"cold_create_latency"`
	WarmCreates       int64                 `json:"warm_creates"`
	WarmCreatesPerSec float64               `json:"warm_creates_per_sec"`
	WarmCreateLatency slolab.LatencySummary `json:"warm_create_latency"`
	WarmSpeedup       float64               `json:"warm_speedup"`
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "base URL of a running fadingd (empty = start one in-process)")
	flag.IntVar(&o.sessions, "sessions", 4, "concurrent sessions (stream mode) or creator goroutines (churn mode)")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "measurement window (churn mode splits it between cold and warm)")
	flag.IntVar(&o.perReq, "blocks-per-request", 32, "blocks streamed per request (resume loops the session; stream mode only)")
	flag.IntVar(&o.idft, "idft", 1024, "block length in samples (both modes: streamed blocks, or the churn spec's setup size)")
	flag.StringVar(&o.format, "format", service.FormatBinary, "stream format: bin or ndjson (stream mode only)")
	flag.IntVar(&o.workers, "workers", 0, "in-process server pool size (0 = GOMAXPROCS)")
	flag.BoolVar(&o.churn, "churn", false, "measure session create/delete churn (cold vs warm setup cache) instead of streaming")
	flag.IntVar(&o.churnN, "churn-n", 24, "envelope count of the churn-mode model (larger = heavier per-create setup)")
	flag.StringVar(&o.replicas, "replicas", "", `measure horizontal scaling across these replica counts (e.g. "1,2,4"; ascending, starting at 1) instead of streaming`)
	flag.IntVar(&o.scaleBlocks, "scale-blocks", 96, "measured blocks per session in -replicas mode")
	out := flag.String("o", "", "also write the JSON report to this file")
	flag.Parse()

	r, err := run(o)
	if err != nil {
		log.Fatalf("loadtest: %v", err)
	}
	doc, _ := json.MarshalIndent(r, "", "  ")
	doc = append(doc, '\n')
	os.Stdout.Write(doc)
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatalf("loadtest: write %s: %v", *out, err)
		}
	}
	if !o.churn && r.Blocks == 0 {
		log.Fatal("loadtest: no blocks served")
	}
	if o.churn && (r.Churn == nil || r.Churn.ColdCreates == 0 || r.Churn.WarmCreates == 0) {
		log.Fatal("loadtest: churn phase created no sessions")
	}
	if o.replicas != "" && (r.Scaling == nil || len(r.Scaling.Points) == 0) {
		log.Fatal("loadtest: scale mode measured no replica points")
	}
}

// run executes one measurement (stream, churn or scale mode) and returns the
// report.
func run(o options) (*report, error) {
	if o.replicas != "" {
		if o.addr != "" {
			return nil, fmt.Errorf("-replicas starts its own in-process replicas and cannot be combined with -addr")
		}
		if o.churn {
			return nil, fmt.Errorf("-replicas and -churn are mutually exclusive")
		}
		return runScale(o)
	}
	base := o.addr
	inProcess := base == ""
	if inProcess {
		svc := service.New(service.Config{Workers: o.workers})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listen: %w", err)
		}
		httpSrv := &http.Server{Handler: svc.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
	}
	r := &report{
		Addr:      base,
		InProcess: inProcess,
		Sessions:  o.sessions,
	}
	if o.churn {
		r.Mode = "churn"
		r.IDFTPoints = o.idft
		start := time.Now()
		churn, err := runChurn(base, o.sessions, o.duration, o.churnN, o.idft)
		if err != nil {
			return nil, err
		}
		r.Seconds = time.Since(start).Seconds()
		r.Churn = churn
		return r, nil
	}
	r.Mode = "stream"
	r.Format = o.format
	r.IDFTPoints = o.idft
	r.BlocksPerRequest = o.perReq

	var blocks, samples, bytesRead, requests atomic.Int64
	var blockLat slolab.Sampler
	deadline := time.Now().Add(o.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSession(base, int64(i), o.idft, o.perReq, o.format, deadline,
				&blocks, &samples, &bytesRead, &requests, &blockLat); err != nil {
				log.Printf("loadtest: session %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	r.Seconds = elapsed
	r.Blocks = blocks.Load()
	r.Samples = samples.Load()
	r.Bytes = bytesRead.Load()
	r.Requests = requests.Load()
	if blockLat.Len() > 0 {
		sum := blockLat.Summary()
		r.BlockLatency = &sum
	}
	if elapsed > 0 {
		r.BlocksPerSec = float64(r.Blocks) / elapsed
		r.SamplesPerSec = float64(r.Samples) / elapsed
		r.MBPerSec = float64(r.Bytes) / elapsed / (1 << 20)
	}
	return r, nil
}

// runScale measures horizontal scaling: it synthesizes a slolab scaling
// sweep over the requested replica counts — the same harness the
// horizontal-scaling SLO scenario gates — and reports its points. Warmup is
// sized so every replica serves at least one request per session before the
// clock starts (the one-time token rebuild and setup-cache fill).
func runScale(o options) (*report, error) {
	counts, err := parseReplicas(o.replicas)
	if err != nil {
		return nil, err
	}
	warm := o.perReq * counts[len(counts)-1]
	blocks := o.scaleBlocks
	if warm > blocks {
		blocks = warm
	}
	var sess service.SessionSpec
	sessJSON := fmt.Sprintf(`{"model": {"type": "eq22"}, "blocks": %d, "idft_points": %d}`, blocks, o.idft)
	if err := json.Unmarshal([]byte(sessJSON), &sess); err != nil {
		return nil, fmt.Errorf("scale session template: %w", err)
	}
	spec := &slolab.Spec{
		Name:             "loadtest-scaling",
		Seed:             1,
		Clients:          o.sessions,
		BlocksPerRequest: o.perReq,
		Session:          sess,
		Server:           slolab.ServerSpec{Workers: o.workers},
		Phases: slolab.Phases{
			Warmup: slolab.PhaseSpec{Units: warm},
			Inject: slolab.PhaseSpec{Units: o.scaleBlocks},
		},
		Fault:   slolab.Fault{Type: slolab.FaultNone},
		Scaling: &slolab.ScalingSpec{Replicas: counts},
		// The generator measures; regression gating is the SLO scenario's
		// job. A token floor of 0.01 only catches a collapsed sweep.
		Gates: []slolab.GateSpec{{Type: slolab.GateScaling, MinSpeedup: 0.01}},
	}
	sum, err := slolab.Run(spec, slolab.RunOptions{
		Logf: func(format string, args ...any) { log.Printf("loadtest: "+format, args...) },
	})
	if err != nil {
		return nil, err
	}
	r := &report{
		InProcess:        true,
		Mode:             "scale",
		Sessions:         o.sessions,
		IDFTPoints:       o.idft,
		BlocksPerRequest: o.perReq,
		Scaling:          sum.Scaling,
	}
	for _, p := range sum.Scaling.Points {
		r.Blocks += int64(p.Blocks)
		r.Seconds += p.Seconds
	}
	return r, nil
}

// parseReplicas parses the -replicas list; ordering rules are enforced by
// the slolab spec validation.
func parseReplicas(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -replicas entry %q: %w", part, err)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// churnSpec builds the churn-mode session spec: an N-envelope exponential
// model at block length idft, whose setup cost (covariance assembly, eigen
// decomposition, Doppler plan) dwarfs the per-session bookkeeping, so the
// cold/warm gap isolates the setup cache.
func churnSpec(n, idft int, seed int64) string {
	return fmt.Sprintf(`{"model": {"type": "exponential", "n": %d, "rho": 0.7}, "seed": %d, "blocks": 16, "idft_points": %d}`, n, seed, idft)
}

// runChurn measures creates/s over two half-duration phases: cold (a fresh
// seed per create, so every create performs the full setup) and warm (one
// shared spec, so every create after the first is a cache hit). Every
// created session is deleted immediately, keeping the table small so the
// measurement never trips the capacity cap.
func runChurn(base string, creators int, duration time.Duration, modelN, idft int) (*churnReport, error) {
	var seedCounter atomic.Int64
	var coldLat, warmLat slolab.Sampler
	cold, coldSecs, err := churnPhase(base, creators, duration/2, &coldLat, func() string {
		return churnSpec(modelN, idft, seedCounter.Add(1))
	})
	if err != nil {
		return nil, fmt.Errorf("cold phase: %w", err)
	}
	warmSpec := churnSpec(modelN, idft, -1)
	warm, warmSecs, err := churnPhase(base, creators, duration/2, &warmLat, func() string {
		return warmSpec
	})
	if err != nil {
		return nil, fmt.Errorf("warm phase: %w", err)
	}
	r := &churnReport{
		ModelN:            modelN,
		ColdCreates:       cold,
		ColdCreateLatency: coldLat.Summary(),
		WarmCreates:       warm,
		WarmCreateLatency: warmLat.Summary(),
	}
	if coldSecs > 0 {
		r.ColdCreatesPerSec = float64(cold) / coldSecs
	}
	if warmSecs > 0 {
		r.WarmCreatesPerSec = float64(warm) / warmSecs
	}
	if r.ColdCreatesPerSec > 0 {
		r.WarmSpeedup = r.WarmCreatesPerSec / r.ColdCreatesPerSec
	}
	return r, nil
}

// churnPhase runs creators goroutines in a create+delete loop until the
// phase deadline, returning the total create count and elapsed seconds.
// Every create round trip is timed into lat, so the report carries the
// latency distribution behind the creates/s aggregate.
func churnPhase(base string, creators int, d time.Duration, lat *slolab.Sampler, spec func() string) (int64, float64, error) {
	var creates atomic.Int64
	errc := make(chan error, creators)
	deadline := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < creators; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				info, err := createOnce(base, spec())
				if err != nil {
					errc <- err
					return
				}
				lat.Record(time.Since(t0))
				creates.Add(1)
				if err := deleteSession(base, info.ID); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errc:
		return creates.Load(), elapsed, err
	default:
	}
	return creates.Load(), elapsed, nil
}

// createOnce POSTs one session spec and returns the created session's info
// (the create response already carries the stream geometry).
func createOnce(base, spec string) (*streamInfo, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("create session: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var info streamInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("decode session info: %w", err)
	}
	return &info, nil
}

// deleteSession closes one session so churn never fills the table.
func deleteSession(base, id string) error {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("delete session %s: status %d", id, resp.StatusCode)
	}
	return nil
}

// driveSession opens one session and streams ranges of it in a resume loop
// until the deadline, accumulating the counters.
func driveSession(base string, seed int64, idft, perReq int, format string, deadline time.Time,
	blocks, samples, bytesRead, requests *atomic.Int64, lat *slolab.Sampler) error {
	spec := fmt.Sprintf(`{"model": {"type": "eq22"}, "seed": %d, "blocks": %d, "idft_points": %d}`,
		seed, 1<<20, idft)
	info, err := createOnce(base, spec)
	if err != nil {
		return err
	}

	from := 0
	for time.Now().Before(deadline) {
		if from+perReq > info.Blocks {
			from = 0
		}
		url := fmt.Sprintf("%s/v1/sessions/%s/stream?format=%s&from=%d&count=%d",
			base, info.ID, format, from, perReq)
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		requests.Add(1)
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("stream: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		got, n, err := consume(resp.Body, format, lat)
		resp.Body.Close()
		if err != nil {
			return err
		}
		blocks.Add(got)
		samples.Add(got * int64(info.N) * int64(info.BlockLength))
		bytesRead.Add(n)
		from += perReq
	}
	return nil
}

// streamInfo is the slice of the create response the generator needs.
type streamInfo struct {
	ID          string `json:"id"`
	N           int    `json:"n"`
	BlockLength int    `json:"block_length"`
	Blocks      int    `json:"blocks"`
}

// consume drains one stream response, returning the block count and bytes.
// Each block's arrival gap (time since the previous block of the same
// response, or since the response began) is recorded into lat.
func consume(r io.Reader, format string, lat *slolab.Sampler) (int64, int64, error) {
	cr := &countingReader{r: r}
	var blocks int64
	last := time.Now()
	if format == service.FormatBinary {
		for {
			_, _, _, err := service.DecodeBinaryFrame(cr)
			if err == io.EOF {
				return blocks, cr.n, nil
			}
			if err != nil {
				return blocks, cr.n, err
			}
			now := time.Now()
			lat.Record(now.Sub(last))
			last = now
			blocks++
		}
	}
	sc := bufio.NewScanner(cr)
	sc.Buffer(nil, 1<<26)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			now := time.Now()
			lat.Record(now.Sub(last))
			last = now
			blocks++
		}
	}
	return blocks, cr.n, sc.Err()
}

// countingReader tracks payload bytes received.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
