package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/token"
)

func TestRunDeploy(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := runDeploy([]string{"-replicas", "4", "-port", "9090", "-o", dir}, &out); err != nil {
		t.Fatalf("runDeploy: %v", err)
	}
	read := func(name string) string {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(b)
	}

	compose := read("docker-compose.yml")
	for _, want := range []string{"fadingd-1:", "fadingd-4:", `"9090:80"`, "FADINGD_TOKEN_KEY", "deploy/Dockerfile"} {
		if !strings.Contains(compose, want) {
			t.Errorf("docker-compose.yml missing %q", want)
		}
	}
	if strings.Contains(compose, "fadingd-5:") {
		t.Error("docker-compose.yml has more replicas than requested")
	}

	nginx := read("nginx.conf")
	for _, want := range []string{"upstream fadingd", "server fadingd-4:8080;", "proxy_buffering off;"} {
		if !strings.Contains(nginx, want) {
			t.Errorf("nginx.conf missing %q", want)
		}
	}

	env := read(".env")
	keyLine, found := "", false
	for _, line := range strings.Split(env, "\n") {
		if v, ok := strings.CutPrefix(line, "FADINGD_TOKEN_KEY="); ok {
			keyLine, found = v, true
		}
	}
	if !found {
		t.Fatal(".env has no FADINGD_TOKEN_KEY line")
	}
	// The generated key must be a usable keyring.
	if _, err := token.ParseKeyring(keyLine); err != nil {
		t.Fatalf("generated key does not parse: %v", err)
	}

	if df := read("Dockerfile"); !strings.Contains(df, "cmd/fadingd") {
		t.Error("Dockerfile does not build cmd/fadingd")
	}
	if !strings.Contains(out.String(), "4 replicas") {
		t.Errorf("summary output %q does not mention replica count", out.String())
	}
}

func TestRunDeployRejectsBadInputs(t *testing.T) {
	if err := runDeploy([]string{"-replicas", "0", "-o", t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("replicas=0 accepted")
	}
	if err := runDeploy([]string{"-token-key", "not-a-key", "-o", t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("invalid -token-key accepted")
	}
}

func TestLoadKeyring(t *testing.T) {
	const keys = "k1:000102030405060708090a0b0c0d0e0f"
	kr, err := loadKeyring(keys, "")
	if err != nil || kr == nil || kr.SignerID() != "k1" {
		t.Fatalf("loadKeyring(flag): kr=%v err=%v", kr, err)
	}
	// From file, with surrounding whitespace.
	path := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(path, []byte(" \n"+keys+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err = loadKeyring("", path)
	if err != nil || kr == nil || kr.SignerID() != "k1" {
		t.Fatalf("loadKeyring(file): kr=%v err=%v", kr, err)
	}
	if kr, err = loadKeyring("", ""); err != nil || kr != nil {
		t.Fatalf("loadKeyring(empty) must disable tokens: kr=%v err=%v", kr, err)
	}
	if _, err = loadKeyring(keys, path); err == nil {
		t.Fatal("both flags set must be rejected")
	}
	if _, err = loadKeyring("", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing key file must be rejected")
	}
	if _, err = loadKeyring("garbage", ""); err == nil {
		t.Fatal("bad keyring must be rejected")
	}
}
