// Command scenariorun drives the declarative scenario harness: it loads the
// JSON specs of a scenario directory, runs the selected ones through the
// internal/scenario gate engine, prints a markdown report, and exits
// non-zero when any gate fails. It is the release gate CI runs on every
// pull request.
//
//	go run ./cmd/scenariorun -all                    # run every scenario
//	go run ./cmd/scenariorun -list                   # list scenarios and tags
//	go run ./cmd/scenariorun -methods                # list generation backends
//	go run ./cmd/scenariorun -run ofdm               # name/tag substring filter
//	go run ./cmd/scenariorun -run compare            # method-comparison suite
//	go run ./cmd/scenariorun -all -json out.json -md out.md
//
// Exit codes: 0 all gates passed, 1 at least one gate failed, 2 bad usage or
// spec/config error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chanspec"
	"repro/internal/scenario"
)

func main() {
	var (
		dir      = flag.String("dir", "scenarios", "scenario spec directory")
		all      = flag.Bool("all", false, "run every scenario")
		runMatch = flag.String("run", "", "run scenarios whose name or tags contain this substring")
		list     = flag.Bool("list", false, "list scenarios and exit")
		methods  = flag.Bool("methods", false, "list the generation backends specs can name and exit")
		jsonOut  = flag.String("json", "", "write the JSON report to this file")
		mdOut    = flag.String("md", "", "write the markdown report to this file")
		quiet    = flag.Bool("q", false, "suppress the markdown report on stdout")
	)
	flag.Parse()

	if *methods {
		for _, m := range chanspec.Methods() {
			fmt.Printf("%-18s %s — %s\n", m.Name, m.Title, m.Citation)
			fmt.Printf("%-18s   constraints: %s\n", "", m.Constraints)
			if m.Defects != "" {
				fmt.Printf("%-18s   defects: %s\n", "", m.Defects)
			}
		}
		return
	}

	specs, err := scenario.LoadDir(*dir)
	if err != nil {
		fatal(err)
	}
	if len(specs) == 0 {
		fatal(fmt.Errorf("no scenario specs in %s", *dir))
	}

	if *list {
		for _, s := range specs {
			tags := ""
			if len(s.Tags) > 0 {
				tags = " [" + strings.Join(s.Tags, ", ") + "]"
			}
			fmt.Printf("%-36s%s  %s\n", s.Name, tags, s.Description)
		}
		return
	}

	selected := filter(specs, *all, *runMatch)
	if len(selected) == 0 {
		fatal(fmt.Errorf("no scenarios selected; use -all, -list, or -run <substring>"))
	}

	results := make([]*scenario.Result, 0, len(selected))
	for _, s := range selected {
		res, err := scenario.Run(s)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scenariorun: %-36s %s\n", s.Name, status(res.Passed))
		results = append(results, res)
	}
	report := scenario.NewReport(results)

	if *jsonOut != "" {
		data, err := report.JSON()
		if err != nil {
			fatal(err)
		}
		if err := writeFile(*jsonOut, data); err != nil {
			fatal(err)
		}
	}
	md := report.Markdown()
	if *mdOut != "" {
		if err := writeFile(*mdOut, []byte(md)); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Print(md)
	}
	if !report.AllPassed() {
		fmt.Fprintf(os.Stderr, "scenariorun: %d of %d scenarios FAILED\n", report.Failed, report.Total)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scenariorun: all %d scenarios passed\n", report.Total)
}

// filter selects the scenarios to run: all of them, or those whose name or
// tags contain the match substring.
func filter(specs []*scenario.Spec, all bool, match string) []*scenario.Spec {
	if all {
		return specs
	}
	if match == "" {
		return nil
	}
	var out []*scenario.Spec
	for _, s := range specs {
		if matches(s, match) {
			out = append(out, s)
		}
	}
	return out
}

// matches reports whether the spec's name or any tag contains the substring.
func matches(s *scenario.Spec, match string) bool {
	if strings.Contains(s.Name, match) {
		return true
	}
	for _, t := range s.Tags {
		if strings.Contains(t, match) {
			return true
		}
	}
	return false
}

func status(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// writeFile writes data, creating parent directories as needed.
func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "scenariorun: %v\n", err)
	os.Exit(2)
}
