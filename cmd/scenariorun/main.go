// Command scenariorun drives the declarative scenario harness: it loads the
// JSON specs of a scenario directory, runs the selected ones through the
// internal/scenario gate engine, prints a markdown report, and exits
// non-zero when any gate fails. It is the release gate CI runs on every
// pull request.
//
//	go run ./cmd/scenariorun -all                    # run every scenario
//	go run ./cmd/scenariorun -list                   # list scenarios and tags
//	go run ./cmd/scenariorun -methods                # list generation backends
//	go run ./cmd/scenariorun -run ofdm               # name/tag substring filter
//	go run ./cmd/scenariorun -run compare            # method-comparison suite
//	go run ./cmd/scenariorun -all -json out.json -md out.md
//
// Exit codes: 0 all gates passed, 1 at least one gate failed, 2 bad usage or
// spec/config error. Failures are summarized per scenario with the first
// failed gate and check, so the CI log names the broken assertion without
// digging through the markdown report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chanspec"
	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenariorun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("dir", "scenarios", "scenario spec directory")
		all      = fs.Bool("all", false, "run every scenario")
		runMatch = fs.String("run", "", "run scenarios whose name or tags contain this substring")
		list     = fs.Bool("list", false, "list scenarios and exit")
		methods  = fs.Bool("methods", false, "list the generation backends specs can name and exit")
		jsonOut  = fs.String("json", "", "write the JSON report to this file")
		mdOut    = fs.String("md", "", "write the markdown report to this file")
		quiet    = fs.Bool("q", false, "suppress the markdown report on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *methods {
		for _, m := range chanspec.Methods() {
			fmt.Fprintf(stdout, "%-18s %s — %s\n", m.Name, m.Title, m.Citation)
			fmt.Fprintf(stdout, "%-18s   constraints: %s\n", "", m.Constraints)
			if m.Defects != "" {
				fmt.Fprintf(stdout, "%-18s   defects: %s\n", "", m.Defects)
			}
		}
		return 0
	}

	specs, err := scenario.LoadDir(*dir)
	if err != nil {
		return fatal(stderr, err)
	}
	if len(specs) == 0 {
		return fatal(stderr, fmt.Errorf("no scenario specs in %s", *dir))
	}

	if *list {
		for _, s := range specs {
			tags := ""
			if len(s.Tags) > 0 {
				tags = " [" + strings.Join(s.Tags, ", ") + "]"
			}
			fmt.Fprintf(stdout, "%-36s%s  %s\n", s.Name, tags, s.Description)
		}
		return 0
	}

	selected := filter(specs, *all, *runMatch)
	if len(selected) == 0 {
		return fatal(stderr, fmt.Errorf("no scenarios selected; use -all, -list, or -run <substring>"))
	}

	results := make([]*scenario.Result, 0, len(selected))
	for _, s := range selected {
		res, err := scenario.Run(s)
		if err != nil {
			return fatal(stderr, err)
		}
		line := status(res.Passed)
		if !res.Passed {
			line += " (" + failureDetail(res) + ")"
		}
		fmt.Fprintf(stderr, "scenariorun: %-36s %s\n", s.Name, line)
		results = append(results, res)
	}
	report := scenario.NewReport(results)

	if *jsonOut != "" {
		data, err := report.JSON()
		if err != nil {
			return fatal(stderr, err)
		}
		if err := writeFile(*jsonOut, data); err != nil {
			return fatal(stderr, err)
		}
	}
	md := report.Markdown()
	if *mdOut != "" {
		if err := writeFile(*mdOut, []byte(md)); err != nil {
			return fatal(stderr, err)
		}
	}
	if !*quiet {
		fmt.Fprint(stdout, md)
	}
	if !report.AllPassed() {
		for _, res := range results {
			if !res.Passed {
				fmt.Fprintf(stderr, "scenariorun: FAIL %s: %s\n", res.Name, failureDetail(res))
			}
		}
		fmt.Fprintf(stderr, "scenariorun: %d of %d scenarios FAILED\n", report.Failed, report.Total)
		return 1
	}
	fmt.Fprintf(stderr, "scenariorun: all %d scenarios passed\n", report.Total)
	return 0
}

// failureDetail names the first failed gate and check of a failed result —
// "psd_forcing: num_clamped 0 >= 1" — so the one-line summary says which
// assertion broke, not just which scenario.
func failureDetail(res *scenario.Result) string {
	for _, g := range res.Gates {
		if g.Passed {
			continue
		}
		for _, c := range g.Checks {
			if !c.Passed {
				return fmt.Sprintf("%s: %s %.6g %s %.6g", g.Type, c.Name, c.Observed, c.Op, c.Limit)
			}
		}
		// A gate can fail without a failing scalar check (e.g. a comparison
		// row with an unexpected outcome); name the gate at least.
		return g.Type
	}
	return "unknown gate"
}

// filter selects the scenarios to run: all of them, or those whose name or
// tags contain the match substring.
func filter(specs []*scenario.Spec, all bool, match string) []*scenario.Spec {
	if all {
		return specs
	}
	if match == "" {
		return nil
	}
	var out []*scenario.Spec
	for _, s := range specs {
		if matches(s, match) {
			out = append(out, s)
		}
	}
	return out
}

// matches reports whether the spec's name or any tag contains the substring.
func matches(s *scenario.Spec, match string) bool {
	if strings.Contains(s.Name, match) {
		return true
	}
	for _, t := range s.Tags {
		if strings.Contains(t, match) {
			return true
		}
	}
	return false
}

func status(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// writeFile writes data, creating parent directories as needed.
func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "scenariorun: %v\n", err)
	return 2
}
