package main

import (
	"testing"

	"repro/internal/scenario"
)

func specsNamed(names ...string) []*scenario.Spec {
	out := make([]*scenario.Spec, len(names))
	for i, n := range names {
		out[i] = &scenario.Spec{Name: n}
	}
	return out
}

func names(specs []*scenario.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func TestFilterAll(t *testing.T) {
	specs := specsNamed("a", "b", "c")
	if got := filter(specs, true, ""); len(got) != 3 {
		t.Errorf("filter -all returned %v", names(got))
	}
}

func TestFilterBySubstring(t *testing.T) {
	specs := specsNamed("eq22-snapshot", "ofdm-spectral", "realtime-eq22")
	got := filter(specs, false, "eq22")
	if len(got) != 2 || got[0].Name != "eq22-snapshot" || got[1].Name != "realtime-eq22" {
		t.Errorf("filter eq22 returned %v", names(got))
	}
	if got := filter(specs, false, "nothing-matches"); len(got) != 0 {
		t.Errorf("filter miss returned %v", names(got))
	}
	if got := filter(specs, false, ""); got != nil {
		t.Errorf("empty filter without -all returned %v", names(got))
	}
}

func TestFilterByTag(t *testing.T) {
	specs := []*scenario.Spec{
		{Name: "a", Tags: []string{"ofdm", "batched"}},
		{Name: "b", Tags: []string{"mimo"}},
	}
	got := filter(specs, false, "ofdm")
	if len(got) != 1 || got[0].Name != "a" {
		t.Errorf("tag filter returned %v", names(got))
	}
}
