package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func specsNamed(names ...string) []*scenario.Spec {
	out := make([]*scenario.Spec, len(names))
	for i, n := range names {
		out[i] = &scenario.Spec{Name: n}
	}
	return out
}

func names(specs []*scenario.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func TestFilterAll(t *testing.T) {
	specs := specsNamed("a", "b", "c")
	if got := filter(specs, true, ""); len(got) != 3 {
		t.Errorf("filter -all returned %v", names(got))
	}
}

func TestFilterBySubstring(t *testing.T) {
	specs := specsNamed("eq22-snapshot", "ofdm-spectral", "realtime-eq22")
	got := filter(specs, false, "eq22")
	if len(got) != 2 || got[0].Name != "eq22-snapshot" || got[1].Name != "realtime-eq22" {
		t.Errorf("filter eq22 returned %v", names(got))
	}
	if got := filter(specs, false, "nothing-matches"); len(got) != 0 {
		t.Errorf("filter miss returned %v", names(got))
	}
	if got := filter(specs, false, ""); got != nil {
		t.Errorf("empty filter without -all returned %v", names(got))
	}
}

func TestFilterByTag(t *testing.T) {
	specs := []*scenario.Spec{
		{Name: "a", Tags: []string{"ofdm", "batched"}},
		{Name: "b", Tags: []string{"mimo"}},
	}
	got := filter(specs, false, "ofdm")
	if len(got) != 1 || got[0].Name != "a" {
		t.Errorf("tag filter returned %v", names(got))
	}
}

// passingSpec is a cheap deterministic scenario: an identity target never
// clamps, so the exact psd_forcing gate passes, and into_identity is a pure
// bit-identity check.
const passingSpec = `{
  "name": "exitcode-pass",
  "seed": 7,
  "model": {"type": "identity", "n": 2},
  "generation": {"mode": "snapshot", "draws": 8},
  "assertions": [
    {"type": "psd_forcing", "max_clamped": 0},
    {"type": "into_identity"}
  ]
}`

// failingSpec demands at least one clamped eigenvalue from the same identity
// target — deterministically false, so the run always fails its gate.
const failingSpec = `{
  "name": "exitcode-fail",
  "seed": 7,
  "model": {"type": "identity", "n": 2},
  "generation": {"mode": "snapshot", "draws": 8},
  "assertions": [
    {"type": "psd_forcing", "min_clamped": 1}
  ]
}`

func writeSpecDir(t *testing.T, specs map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range specs {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunExitCodes is the exit-code contract table: 0 all gates pass, 1 a
// gate failed (and the summary names the failed assertion, not just the
// scenario), 2 usage or spec errors.
func TestRunExitCodes(t *testing.T) {
	passDir := writeSpecDir(t, map[string]string{"pass.json": passingSpec})
	failDir := writeSpecDir(t, map[string]string{"pass.json": passingSpec, "fail.json": failingSpec})

	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr []string
	}{
		{
			name:     "all-pass",
			args:     []string{"-dir", passDir, "-all", "-q"},
			wantCode: 0,
			wantStderr: []string{
				"all 1 scenarios passed",
			},
		},
		{
			name:     "gate-failure-names-assertion",
			args:     []string{"-dir", failDir, "-all", "-q"},
			wantCode: 1,
			wantStderr: []string{
				"FAIL exitcode-fail: psd_forcing: clamped eigenvalues 0 >= 1",
				"1 of 2 scenarios FAILED",
			},
		},
		{
			name:       "bad-flag",
			args:       []string{"-no-such-flag"},
			wantCode:   2,
			wantStderr: []string{"flag provided but not defined"},
		},
		{
			name:       "missing-dir",
			args:       []string{"-dir", filepath.Join(passDir, "nope"), "-all"},
			wantCode:   2,
			wantStderr: []string{"scenariorun:"},
		},
		{
			name:       "no-selection",
			args:       []string{"-dir", passDir},
			wantCode:   2,
			wantStderr: []string{"no scenarios selected"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d\nstderr:\n%s", tc.args, got, tc.wantCode, stderr.String())
			}
			for _, want := range tc.wantStderr {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
		})
	}
}

// TestRunPerScenarioFailureLine pins the per-scenario progress line: a failed
// scenario's PASS/FAIL line carries the failed gate and check inline.
func TestRunPerScenarioFailureLine(t *testing.T) {
	dir := writeSpecDir(t, map[string]string{"fail.json": failingSpec})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-dir", dir, "-all", "-q"}, &stdout, &stderr); got != 1 {
		t.Fatalf("run = %d, want 1", got)
	}
	if !strings.Contains(stderr.String(), "FAIL (psd_forcing: clamped eigenvalues 0 >= 1)") {
		t.Errorf("progress line does not name the failed check:\n%s", stderr.String())
	}
}

// TestRunWritesArtifacts covers the -json/-md artifact paths through run().
func TestRunWritesArtifacts(t *testing.T) {
	dir := writeSpecDir(t, map[string]string{"pass.json": passingSpec})
	out := t.TempDir()
	jsonPath := filepath.Join(out, "sub", "report.json")
	mdPath := filepath.Join(out, "report.md")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-dir", dir, "-all", "-q", "-json", jsonPath, "-md", mdPath}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d, want 0\nstderr:\n%s", got, stderr.String())
	}
	for _, p := range []string{jsonPath, mdPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("artifact %s: %v", p, err)
		}
		if !strings.Contains(string(data), "exitcode-pass") {
			t.Errorf("artifact %s does not mention the scenario", p)
		}
	}
}
