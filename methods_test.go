package rayleigh

import (
	"errors"
	"math/cmplx"
	"testing"
)

// goldenCovariance is the paper's Eq. (23) matrix: equal powers, real,
// positive definite — inside every N = 3-capable method's vocabulary.
func goldenCovariance() [][]complex128 {
	return [][]complex128{
		{1, 0.8123, 0.3730},
		{0.8123, 1, 0.8123},
		{0.3730, 0.8123, 1},
	}
}

// sampleCovarianceError draws batched snapshots from gen and returns the
// worst absolute entry difference between the sample covariance and target.
func sampleCovarianceError(t *testing.T, gen *Generator, target [][]complex128, draws int) float64 {
	t.Helper()
	batch := make([]Snapshot, draws)
	if err := gen.SnapshotsInto(batch); err != nil {
		t.Fatalf("SnapshotsInto: %v", err)
	}
	n := gen.N()
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum complex128
			for _, s := range batch {
				sum += s.Gaussian[i] * cmplx.Conj(s.Gaussian[j])
			}
			got := sum / complex(float64(draws), 0)
			if d := cmplx.Abs(got - target[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestEveryMethodAgreesOnGoldenCovariance is the cross-method golden test:
// for an equal-power, real, positive-definite covariance every backend must
// reproduce the generalized engine's target within tolerance.
func TestEveryMethodAgreesOnGoldenCovariance(t *testing.T) {
	for _, method := range []string{
		MethodGeneralized, MethodSalzWinters, MethodBeaulieuMerani,
		MethodNatarajan, MethodSorooshyariDaut,
	} {
		gen, err := NewWithMethod(method, Config{Covariance: goldenCovariance(), Seed: 113})
		if err != nil {
			t.Fatalf("NewWithMethod(%s): %v", method, err)
		}
		if gen.Method() != method && !(method == "" && gen.Method() == MethodGeneralized) {
			t.Errorf("Method() = %q, want %q", gen.Method(), method)
		}
		if d := sampleCovarianceError(t, gen, goldenCovariance(), 60000); d > 0.04 {
			t.Errorf("%s misses the golden covariance by %g", method, d)
		}
	}

	// Ertel–Reed needs N = 2; the equal-power real pair is its home turf.
	pair := [][]complex128{{1, 0.6}, {0.6, 1}}
	gen, err := NewWithMethod(MethodErtelReed, Config{Covariance: pair, Seed: 113})
	if err != nil {
		t.Fatalf("NewWithMethod(ertel_reed): %v", err)
	}
	if d := sampleCovarianceError(t, gen, pair, 60000); d > 0.04 {
		t.Errorf("ertel_reed misses the pair covariance by %g", d)
	}
}

// TestMethodFailureClasses pins each documented failure class to its public
// typed error.
func TestMethodFailureClasses(t *testing.T) {
	unequal := [][]complex128{{2, 0.5}, {0.5, 1}}
	complexPair := [][]complex128{{1, 0.5 + 0.3i}, {0.5 - 0.3i, 1}}
	indefinite := [][]complex128{
		{1, 0.9, -0.9},
		{0.9, 1, 0.9},
		{-0.9, 0.9, 1},
	}
	cases := []struct {
		method string
		cov    [][]complex128
		want   error
	}{
		{MethodErtelReed, goldenCovariance(), ErrMethodUnsupported},            // N != 2
		{MethodErtelReed, unequal, ErrMethodUnsupported},                       // unequal powers
		{MethodErtelReed, complexPair, ErrMethodUnsupported},                   // complex correlation
		{MethodSalzWinters, unequal, ErrMethodUnsupported},                     // unequal powers
		{MethodSalzWinters, indefinite, ErrMethodSetup},                        // non-PSD real coloring
		{MethodBeaulieuMerani, indefinite, ErrMethodSetup},                     // Cholesky rejects
		{MethodNatarajan, indefinite, ErrMethodSetup},                          // real part not PD
		{MethodBeaulieuMerani, [][]complex128{{1, 1}, {1, 1}}, ErrMethodSetup}, // rank deficient
	}
	for _, tc := range cases {
		_, err := NewWithMethod(tc.method, Config{Covariance: tc.cov, Seed: 1})
		if !errors.Is(err, tc.want) {
			t.Errorf("NewWithMethod(%s, %v) error = %v, want %v", tc.method, tc.cov, err, tc.want)
		}
	}

	// The same classes gate the real-time entry point.
	if _, err := NewRealTime(RealTimeConfig{
		Covariance: goldenCovariance(), IDFTPoints: 256, NormalizedDoppler: 0.05,
		Seed: 1, Method: MethodErtelReed,
	}); !errors.Is(err, ErrMethodUnsupported) {
		t.Errorf("NewRealTime(ertel_reed, N=3) error = %v, want ErrMethodUnsupported", err)
	}
	if _, err := NewStream(RealTimeConfig{
		Covariance: indefinite, IDFTPoints: 256, NormalizedDoppler: 0.05,
		Seed: 1, Method: MethodBeaulieuMerani,
	}); !errors.Is(err, ErrMethodSetup) {
		t.Errorf("NewStream(beaulieu_merani, indefinite) error = %v, want ErrMethodSetup", err)
	}

	// Unknown names are an invalid configuration, not a method failure.
	if _, err := NewWithMethod("nope", Config{Covariance: goldenCovariance(), Seed: 1}); err == nil {
		t.Errorf("unknown method did not error")
	}

	// The generalized engine accepts everything above.
	for _, cov := range [][][]complex128{unequal, complexPair, indefinite} {
		if _, err := New(Config{Covariance: cov, Seed: 1}); err != nil {
			t.Errorf("generalized on %v: %v", cov, err)
		}
	}
}

// TestMethodsCatalog sanity-checks the public catalog.
func TestMethodsCatalog(t *testing.T) {
	infos := Methods()
	if len(infos) != 6 {
		t.Fatalf("Methods() returned %d entries, want 6", len(infos))
	}
	if infos[0].Name != MethodGeneralized {
		t.Errorf("catalog does not lead with the generalized method")
	}
	for _, m := range infos {
		if m.Name == "" || m.Title == "" || m.Citation == "" || m.Constraints == "" {
			t.Errorf("catalog entry %+v has empty fields", m)
		}
		if _, err := NewWithMethod(m.Name, Config{Covariance: [][]complex128{{1, 0.5}, {0.5, 1}}, Seed: 1}); err != nil {
			t.Errorf("catalog method %s cannot generate the equal-power pair: %v", m.Name, err)
		}
	}
}

// TestRealtimeMethodCovariance runs the real-time combination under a
// conventional coloring and checks the block covariance still matches the
// target — and that the Sorooshyari–Daut backend's unit-variance assumption
// produces its documented covariance bias instead.
func TestRealtimeMethodCovariance(t *testing.T) {
	cov := goldenCovariance()
	measure := func(method string) (float64, *Stream) {
		stream, err := NewStream(RealTimeConfig{
			Covariance: cov, IDFTPoints: 2048, NormalizedDoppler: 0.05,
			Seed: 211, Method: method,
		})
		if err != nil {
			t.Fatalf("NewStream(%s): %v", method, err)
		}
		cur, err := stream.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		n := stream.N()
		acc := make([][]complex128, n)
		for i := range acc {
			acc[i] = make([]complex128, n)
		}
		var block Block
		const blocks = 24
		for b := 0; b < blocks; b++ {
			if err := cur.Next(&block); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var sum complex128
					for l := range block.Gaussian[i] {
						sum += block.Gaussian[i][l] * cmplx.Conj(block.Gaussian[j][l])
					}
					acc[i][j] += sum / complex(float64(blocks*stream.BlockLength()), 0)
				}
			}
		}
		worst := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := cmplx.Abs(acc[i][j] - cov[i][j]); d > worst {
					worst = d
				}
			}
		}
		return worst, stream
	}

	for _, method := range []string{MethodGeneralized, MethodBeaulieuMerani, MethodNatarajan, MethodSalzWinters} {
		if worst, _ := measure(method); worst > 0.06 {
			t.Errorf("%s realtime covariance misses the target by %g", method, worst)
		}
	}

	// Sorooshyari–Daut assumes σ²_g = 1 while the Doppler filter's true
	// Eq. (19) variance is far smaller, so the served covariance is biased —
	// the defect Section 5 corrects.
	worst, stream := measure(MethodSorooshyariDaut)
	if stream.SampleVariance() != 1 {
		t.Errorf("sorooshyari_daut sample variance = %g, want the assumed 1", stream.SampleVariance())
	}
	if worst < 0.2 {
		t.Errorf("sorooshyari_daut realtime bias = %g, want the documented defect (>= 0.2)", worst)
	}
}
