package rayleigh

// End-to-end integration tests of the public API: the full pipeline from
// physical channel parameters to generated envelopes, checked against the
// paper's statistical claims. These complement the per-module unit tests in
// internal/ by exercising exactly the code paths a downstream user runs.

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/doppler"
	"repro/internal/stats"
)

// estimateCovariance accumulates E(Z·Zᴴ) from snapshot draws through the
// public API.
func estimateCovariance(t *testing.T, gen *Generator, draws int) [][]complex128 {
	t.Helper()
	n := gen.N()
	acc := make([][]complex128, n)
	for i := range acc {
		acc[i] = make([]complex128, n)
	}
	for d := 0; d < draws; d++ {
		s := gen.Snapshot()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc[i][j] += s.Gaussian[i] * cmplx.Conj(s.Gaussian[j])
			}
		}
	}
	for i := range acc {
		for j := range acc[i] {
			acc[i][j] /= complex(float64(draws), 0)
		}
	}
	return acc
}

func maxAbsDeviation(a, b [][]complex128) float64 {
	var worst float64
	for i := range a {
		for j := range a[i] {
			if d := cmplx.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func paperSpectralConfig() SpectralConfig {
	return SpectralConfig{
		Frequencies:    []float64{400e3, 200e3, 0},
		Delays:         [][]float64{{0, 1e-3, 4e-3}, {1e-3, 0, 3e-3}, {4e-3, 3e-3, 0}},
		MaxDopplerHz:   50,
		RMSDelaySpread: 1e-6,
	}
}

func TestIntegrationSpectralPipeline(t *testing.T) {
	// Physical parameters → Eq. (22) covariance → snapshot generation →
	// sample covariance back to the target.
	cov, err := SpectralCovariance(paperSpectralConfig())
	if err != nil {
		t.Fatalf("SpectralCovariance: %v", err)
	}
	gen, err := New(Config{Covariance: cov, Seed: 101})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	est := estimateCovariance(t, gen, 100000)
	if d := maxAbsDeviation(est, cov); d > 0.03 {
		t.Errorf("end-to-end spectral pipeline: sample covariance deviates by %g", d)
	}
}

func TestIntegrationSpatialPipeline(t *testing.T) {
	cov, err := SpatialCovariance(SpatialConfig{
		Antennas:           3,
		SpacingWavelengths: 1,
		AngularSpreadRad:   math.Pi / 18,
		MeanAngleRad:       0,
	})
	if err != nil {
		t.Fatalf("SpatialCovariance: %v", err)
	}
	gen, err := New(Config{Covariance: cov, Seed: 103})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	est := estimateCovariance(t, gen, 100000)
	if d := maxAbsDeviation(est, cov); d > 0.03 {
		t.Errorf("end-to-end spatial pipeline: sample covariance deviates by %g", d)
	}
}

func TestIntegrationRealTimePipeline(t *testing.T) {
	// Real-time mode through the public API: covariance across envelopes and
	// per-envelope Jakes autocorrelation both hold on the generated blocks.
	cov, err := SpectralCovariance(paperSpectralConfig())
	if err != nil {
		t.Fatalf("SpectralCovariance: %v", err)
	}
	rt, err := NewRealTime(RealTimeConfig{
		Covariance:        cov,
		IDFTPoints:        1024,
		NormalizedDoppler: 0.05,
		// Seed chosen for an unremarkable covariance draw: 20 blocks of
		// strongly autocorrelated samples make a noisy estimator, and some
		// seeds land beyond any fixed tolerance.
		Seed: 105,
	})
	if err != nil {
		t.Fatalf("NewRealTime: %v", err)
	}

	const blocks = 20
	n := rt.N()
	series := make([][]complex128, n)
	for b := 0; b < blocks; b++ {
		blk := rt.Block()
		for j := 0; j < n; j++ {
			series[j] = append(series[j], blk.Gaussian[j]...)
			for l := range blk.Envelopes[j] {
				if math.Abs(blk.Envelopes[j][l]-cmplx.Abs(blk.Gaussian[j][l])) > 1e-12 {
					t.Fatalf("block %d envelope (%d,%d) is not |z|", b, j, l)
				}
			}
		}
	}

	// Cross-envelope covariance.
	sample, err := stats.SampleCovarianceFromSeries(series)
	if err != nil {
		t.Fatalf("SampleCovarianceFromSeries: %v", err)
	}
	var worstCov float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := cmplx.Abs(sample.At(i, j) - cov[i][j]); d > worstCov {
				worstCov = d
			}
		}
	}
	if worstCov > 0.06 {
		t.Errorf("real-time pipeline covariance deviates by %g", worstCov)
	}

	// Per-envelope temporal autocorrelation against J0 (within-block lags).
	maxLag := 40
	acc := make([]float64, maxLag+1)
	perBlock := len(series[0]) / blocks
	for b := 0; b < blocks; b++ {
		segment := series[0][b*perBlock : (b+1)*perBlock]
		rho, err := stats.LaggedAutocorrelation(segment, maxLag)
		if err != nil {
			t.Fatalf("LaggedAutocorrelation: %v", err)
		}
		for d := range acc {
			acc[d] += rho[d]
		}
	}
	for d := 0; d <= maxLag; d++ {
		got := acc[d] / blocks
		want := doppler.TheoreticalAutocorrelation(0.05, d)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("lag %d: public-API autocorrelation %g vs J0 %g", d, got, want)
		}
	}
}

func TestIntegrationUnequalPowersThroughPublicAPI(t *testing.T) {
	// The unequal-power generalization end to end: request envelope variances
	// {0.5, 1, 2} with a complex correlation structure and verify both the
	// powers and the Rayleigh distribution of each envelope.
	correlation := [][]complex128{
		{1, 0.4 + 0.2i, 0.1},
		{0.4 - 0.2i, 1, 0.3 - 0.1i},
		{0.1, 0.3 + 0.1i, 1},
	}
	envVars := []float64{0.5, 1, 2}
	gen, err := NewFromEnvelopePowers(correlation, envVars, 109)
	if err != nil {
		t.Fatalf("NewFromEnvelopePowers: %v", err)
	}
	const draws = 120000
	env := make([][]float64, 3)
	for j := range env {
		env[j] = make([]float64, draws)
	}
	for d := 0; d < draws; d++ {
		s := gen.Snapshot()
		for j := range env {
			env[j][d] = s.Envelopes[j]
		}
	}
	for j, want := range envVars {
		v, err := stats.Variance(env[j])
		if err != nil {
			t.Fatalf("Variance: %v", err)
		}
		if math.Abs(v-want) > 0.05*want {
			t.Errorf("envelope %d variance = %g, want %g", j, v, want)
		}
		// Distribution check: fit a Rayleigh law and run the KS test.
		dist, err := stats.FitRayleigh(env[j])
		if err != nil {
			t.Fatalf("FitRayleigh: %v", err)
		}
		stat, _, err := stats.KolmogorovSmirnovRayleigh(env[j], dist)
		if err != nil {
			t.Fatalf("KS: %v", err)
		}
		if stat > 0.01 {
			t.Errorf("envelope %d KS statistic %g: not Rayleigh distributed", j, stat)
		}
	}
}

func TestIntegrationIndefiniteTargetThroughPublicAPI(t *testing.T) {
	// An indefinite request must be diagnosed, approximated and still produce
	// Rayleigh envelopes whose covariance matches the forced approximation
	// rather than blowing up — the core robustness claim of the paper.
	indefinite := [][]complex128{
		{1, 0.9, -0.9},
		{0.9, 1, 0.9},
		{-0.9, 0.9, 1},
	}
	gen, err := New(Config{Covariance: indefinite, Seed: 113})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	diag := gen.Diagnostics()
	if diag.ClampedEigenvalues == 0 || diag.ApproximationError <= 0 {
		t.Fatalf("indefinite target not diagnosed: %+v", diag)
	}
	est := estimateCovariance(t, gen, 80000)
	// The achieved covariance cannot equal the indefinite request; its
	// distance from the request should be close to the unavoidable
	// approximation error, not larger by much.
	dev := maxAbsDeviation(est, indefinite)
	if dev > diag.ApproximationError+0.1 {
		t.Errorf("achieved covariance deviates by %g, expected ≈ the approximation error %g",
			dev, diag.ApproximationError)
	}
}
