package rayleigh

import (
	"errors"
	"fmt"

	"repro/internal/backend"
	"repro/internal/baseline"
	"repro/internal/chanspec"
	"repro/internal/cmplxmat"
	"repro/internal/core"
	"repro/internal/doppler"
)

// ErrInvalidConfig reports an invalid public-API configuration.
var ErrInvalidConfig = errors.New("rayleigh: invalid configuration")

// ErrMethodUnsupported reports that the selected generation method cannot
// handle the requested configuration — the shortcoming the paper attributes
// to it (unequal powers under Salz–Winters, N ≠ 2 or a complex correlation
// under Ertel–Reed). It never fires for the default generalized method.
var ErrMethodUnsupported = baseline.ErrUnsupported

// ErrMethodSetup reports that the selected generation method's decomposition
// rejected the covariance matrix — typically Cholesky on a target that is not
// positive definite, the restriction the generalized method's zero-clamp
// forcing removes.
var ErrMethodSetup = baseline.ErrSetupFailed

// Generation method names accepted by Config.Method, RealTimeConfig.Method
// and NewWithMethod: the paper's generalized algorithm (the default) and the
// five conventional methods its introduction reviews. Each method's
// constraints and failure classes are catalogued in docs/methods.md and by
// Methods.
const (
	MethodGeneralized     = chanspec.MethodGeneralized
	MethodSalzWinters     = chanspec.MethodSalzWinters
	MethodErtelReed       = chanspec.MethodErtelReed
	MethodBeaulieuMerani  = chanspec.MethodBeaulieuMerani
	MethodNatarajan       = chanspec.MethodNatarajan
	MethodSorooshyariDaut = chanspec.MethodSorooshyariDaut
)

// MethodInfo describes one generation backend.
type MethodInfo struct {
	// Name is the Config.Method value.
	Name string
	// Title is the human-readable method name.
	Title string
	// Citation names the source in the paper's reference list.
	Citation string
	// Constraints summarizes the configurations the method supports.
	Constraints string
	// Defects summarizes the accuracy losses the paper attributes to the
	// method on configurations it does accept (empty when none).
	Defects string
}

// Methods returns the catalog of generation backends, generalized first.
func Methods() []MethodInfo {
	infos := chanspec.Methods()
	out := make([]MethodInfo, len(infos))
	for i, m := range infos {
		out[i] = MethodInfo{
			Name:        m.Name,
			Title:       m.Title,
			Citation:    m.Citation,
			Constraints: m.Constraints,
			Defects:     m.Defects,
		}
	}
	return out
}

// Snapshot is one independent draw: N correlated complex Gaussian samples and
// their moduli, the Rayleigh envelopes.
type Snapshot struct {
	// Gaussian holds the correlated zero-mean complex Gaussian samples z_j.
	Gaussian []complex128
	// Envelopes holds the Rayleigh envelopes r_j = |z_j|.
	Envelopes []float64
}

// Diagnostics reports how the desired covariance matrix was conditioned
// before coloring.
type Diagnostics struct {
	// Eigenvalues of the desired covariance matrix, ascending.
	Eigenvalues []float64
	// ClampedEigenvalues is the number of negative eigenvalues replaced by
	// exactly zero (the positive semi-definiteness forcing of the paper).
	ClampedEigenvalues int
	// ApproximationError is the Frobenius distance between the desired
	// covariance matrix and its forced positive semi-definite approximation;
	// zero when the desired matrix was already positive semi-definite.
	ApproximationError float64
}

// Generator produces independent snapshots of N correlated Rayleigh fading
// envelopes. The default backend is the paper's generalized algorithm
// (Section 4.4); Config.Method swaps in one of the conventional methods,
// which keep their documented constraints and failure classes.
//
// A Generator is not safe for concurrent use: its methods share internal
// scratch, so drive each Generator from one goroutine at a time (the
// SnapshotsInto worker fan-out stays inside a single call and is fine).
// Concurrent hosts wanting shared deterministic output should give each
// goroutine its own Generator built from the same Config, or use Stream for
// the real-time block sequence.
type Generator struct {
	backend backend.Backend
	workers int
	batch   []core.Snapshot // reusable header scratch for SnapshotsInto
}

// Config configures a Generator built directly from a covariance matrix.
type Config struct {
	// Covariance is the desired N×N covariance matrix of the complex
	// Gaussian processes, row by row. It must be Hermitian; under the default
	// generalized method it does not need to be positive definite or even
	// positive semi-definite (conventional methods are pickier — see Methods).
	Covariance [][]complex128
	// Seed seeds the random stream. The same seed reproduces the same
	// sequence of snapshots.
	Seed int64
	// Parallel is the worker count of the batched generation path
	// (SnapshotsInto). Values <= 1 select the sequential path. The output of a
	// seeded run is bit-identical for every setting, including sequential:
	// each chunk of work draws from its own stream derived deterministically
	// from the seed before any generation starts, so the schedule cannot leak
	// into the values. The conventional methods' batched paths are sequential
	// and ignore it.
	Parallel int
	// Method selects the generation backend by its spec name (one of the
	// Method* constants); empty selects MethodGeneralized. Conventional
	// methods reject configurations outside their vocabulary with
	// ErrMethodUnsupported or ErrMethodSetup at construction.
	Method string
	// Fading selects the envelope model by its spec name (one of the Fading*
	// constants); empty selects FadingRayleigh. The composite models are
	// applied per draw on top of the selected method's correlated Gaussians;
	// FadingNonstationaryDoppler needs a time axis and is rejected here — use
	// RealTimeConfig. The model vocabulary is catalogued by Models.
	Fading string
	// FadingParams carries the selected fading model's parameters; nil is
	// valid only for FadingRayleigh.
	FadingParams *FadingParams
}

// New builds a Generator for the desired covariance matrix.
func New(cfg Config) (*Generator, error) {
	k, err := toMatrix(cfg.Covariance)
	if err != nil {
		return nil, err
	}
	b, err := backend.NewWithFading(cfg.Method, cfg.Fading, fadingSpecParams(cfg.FadingParams), k, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("rayleigh: %w", err)
	}
	return &Generator{backend: b, workers: cfg.Parallel}, nil
}

// NewWithMethod builds a Generator that realizes cfg through the named
// generation method, overriding cfg.Method. It is shorthand for setting
// Config.Method; the method vocabulary is the Method* constants.
func NewWithMethod(method string, cfg Config) (*Generator, error) {
	cfg.Method = method
	return New(cfg)
}

// PowersConfig configures a Generator built from a correlation-coefficient
// matrix of the complex Gaussians and desired envelope variances (the
// paper's "start from envelope powers" entry point, Eq. (11)).
type PowersConfig struct {
	// Correlation is the N×N correlation-coefficient matrix ρ of the complex
	// Gaussian processes.
	Correlation [][]complex128
	// EnvelopeVariances holds the desired Rayleigh envelope variances σr²_j,
	// one per envelope.
	EnvelopeVariances []float64
	// Seed seeds the random stream (same semantics as Config.Seed).
	Seed int64
	// Parallel is the worker count of the batched generation path (same
	// semantics as Config.Parallel: output is bit-identical for every
	// setting).
	Parallel int
	// Method selects the generation backend (same semantics as
	// Config.Method). Note the conventional equal-power-only methods reject
	// unequal envelope variances here — the restriction the Eq. (11) entry
	// point exists to lift.
	Method string
	// Fading selects the envelope model (same semantics as Config.Fading:
	// snapshot modes reject FadingNonstationaryDoppler).
	Fading string
	// FadingParams carries the selected fading model's parameters (same
	// semantics as Config.FadingParams).
	FadingParams *FadingParams
}

// NewFromPowers builds a Generator from envelope-power parameters, applying
// the Eq. (11) conversion internally to enable unequal envelope powers.
func NewFromPowers(cfg PowersConfig) (*Generator, error) {
	rho, err := toMatrix(cfg.Correlation)
	if err != nil {
		return nil, err
	}
	k, err := core.CovarianceFromEnvelopePowers(rho, cfg.EnvelopeVariances)
	if err != nil {
		return nil, fmt.Errorf("rayleigh: %w", err)
	}
	b, err := backend.NewWithFading(cfg.Method, cfg.Fading, fadingSpecParams(cfg.FadingParams), k, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("rayleigh: %w", err)
	}
	return &Generator{backend: b, workers: cfg.Parallel}, nil
}

// NewFromEnvelopePowers builds a Generator from a correlation-coefficient
// matrix of the complex Gaussians and the desired envelope variances σr²_j
// (the paper's Eq. (11) conversion is applied internally), enabling unequal
// envelope powers. It is equivalent to NewFromPowers with Parallel 0 (this
// signature used to drop the worker count entirely, forcing SnapshotsInto
// sequential, and cannot name a generation method).
//
// Deprecated: use NewFromPowers, whose PowersConfig carries the worker count
// and the generation method. The examples-build CI step rejects new uses.
func NewFromEnvelopePowers(correlation [][]complex128, envelopeVariances []float64, seed int64) (*Generator, error) {
	return NewFromPowers(PowersConfig{
		Correlation:       correlation,
		EnvelopeVariances: envelopeVariances,
		Seed:              seed,
	})
}

// N returns the number of envelopes per snapshot.
func (g *Generator) N() int { return g.backend.N() }

// Method returns the canonical name of the generation backend in use.
func (g *Generator) Method() string { return g.backend.Method() }

// Snapshot draws one independent snapshot.
func (g *Generator) Snapshot() Snapshot {
	n := g.backend.N()
	s := Snapshot{Gaussian: make([]complex128, n), Envelopes: make([]float64, n)}
	// GenerateInto cannot fail: the destination lengths match by construction.
	_ = g.backend.GenerateInto(s.Gaussian, s.Envelopes)
	return s
}

// Snapshots draws count independent snapshots.
func (g *Generator) Snapshots(count int) ([]Snapshot, error) {
	if count <= 0 {
		return nil, fmt.Errorf("rayleigh: snapshot count %d must be positive: %w", count, ErrInvalidConfig)
	}
	out := make([]Snapshot, count)
	for i := range out {
		out[i] = g.Snapshot()
	}
	return out, nil
}

// SnapshotsInto fills dst with len(dst) independent snapshots, reusing the
// Gaussian/Envelopes storage of every entry that already has length N (entries
// with missing or wrong-length slices are allocated). This is the streaming
// counterpart of Snapshots for long-running simulations: with pre-shaped
// destinations the per-sample heap traffic is amortized O(1) (a handful of
// stream derivations per 64-snapshot chunk, nothing per sample).
//
// When Config.Parallel > 1 the chunks fan out across that many workers; the
// output is bit-identical for every worker count. The batched path draws from
// chunk streams derived from the seed, so it reproduces other batched runs,
// not an element-wise sequence of Snapshot calls.
func (g *Generator) SnapshotsInto(dst []Snapshot) error {
	if cap(g.batch) < len(dst) {
		g.batch = make([]core.Snapshot, len(dst))
	}
	batch := g.batch[:len(dst)]
	for i := range dst {
		batch[i] = core.Snapshot{Gaussian: dst[i].Gaussian, Envelopes: dst[i].Envelopes}
	}
	if err := g.backend.GenerateBatchInto(batch, g.workers); err != nil {
		return fmt.Errorf("rayleigh: %w", err)
	}
	for i := range dst {
		dst[i] = Snapshot{Gaussian: batch[i].Gaussian, Envelopes: batch[i].Envelopes}
		// Drop the scratch's reference so the generator does not pin the
		// caller's sample storage beyond the call.
		batch[i] = core.Snapshot{}
	}
	return nil
}

// Diagnostics reports the covariance conditioning applied at construction.
// Only the generalized method forces positive semi-definiteness; for the
// conventional backends — which reject unsupported targets instead of
// conditioning them — the zero value is returned.
func (g *Generator) Diagnostics() Diagnostics {
	f := g.backend.Diagnostics()
	if f == nil {
		return Diagnostics{}
	}
	return diagnosticsFromForced(f)
}

// RealTime produces blocks of time-correlated envelopes: the cross-envelope
// covariance follows the desired matrix while each envelope's
// autocorrelation follows the Jakes model J0(2π·fm·d) (Section 5, Fig. 3 of
// the paper).
//
// A RealTime generator is not safe for concurrent use: its methods share
// internal scratch, so drive each generator from one goroutine at a time
// (the BlocksInto worker fan-out stays inside a single call and is fine).
// Servers and other concurrent hosts should use Stream, whose cursors
// generate the equivalent batched block sequence without shared state.
type RealTime struct {
	inner   *core.RealTimeGenerator
	workers int
	scratch core.Block   // header scratch for BlockInto
	blocks  []core.Block // backing structs for BlocksInto
	views   []*core.Block
	seen    map[*Block]int // reused per BlocksInto call for alias detection
}

// RealTimeConfig configures a RealTime generator.
type RealTimeConfig struct {
	// Covariance is the desired covariance matrix of the complex Gaussian
	// processes (same semantics as Config.Covariance).
	Covariance [][]complex128
	// IDFTPoints is M, the block length in samples (and IDFT size) of each
	// Young–Beaulieu Doppler generator. The paper's evaluation uses 4096.
	IDFTPoints int
	// NormalizedDoppler is fm = Fm/Fs, the maximum Doppler shift divided by
	// the sampling rate; it must lie in (0, 0.5). The paper's evaluation uses
	// 0.05 (Fm = 50 Hz at Fs = 1 kHz).
	NormalizedDoppler float64
	// InputVariance is σ²_orig of the Gaussian sequences feeding the Doppler
	// filters; zero selects the paper's 1/2. The output statistics do not
	// depend on it because the whitening step uses the measured filter gain.
	InputVariance float64
	// Seed seeds the random streams.
	Seed int64
	// Parallel is the worker count of the batched generation path
	// (BlocksInto). Values <= 1 select the sequential path; the output of a
	// seeded run is bit-identical for every setting because every block draws
	// from its own stream set, derived in block order before generation starts.
	Parallel int
	// Method selects the generation backend (same vocabulary and failure
	// classes as Config.Method). A conventional method contributes its own
	// coloring matrix to the Section 5 combination — and, for
	// MethodSorooshyariDaut, its unit-variance whitening assumption, whose
	// covariance bias is the defect the paper corrects. docs/methods.md
	// documents each method's real-time semantics.
	Method string
	// Fading selects the envelope model (one of the Fading* constants; empty
	// selects FadingRayleigh). The per-sample models (Rician, Nakagami-m,
	// Suzuki) transform every generated sample; FadingNonstationaryDoppler
	// instead replans the Doppler spectrum per trajectory segment, in which
	// case NormalizedDoppler must be zero — FadingParams.Segments carries the
	// per-segment values. Either way block k stays a pure function of the
	// configuration and k, bit-identical for every worker count.
	Fading string
	// FadingParams carries the selected fading model's parameters; nil is
	// valid only for FadingRayleigh.
	FadingParams *FadingParams
}

// Block is one block of M consecutive time samples for each of the N
// envelopes.
type Block struct {
	// Gaussian[j][l] is the complex Gaussian of envelope j at time sample l.
	Gaussian [][]complex128
	// Envelopes[j][l] is the Rayleigh envelope |Gaussian[j][l]|.
	Envelopes [][]float64
}

// NewRealTime builds a RealTime generator.
func NewRealTime(cfg RealTimeConfig) (*RealTime, error) {
	coreCfg, err := realtimeCoreConfig(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewRealTimeGenerator(coreCfg)
	if err != nil {
		return nil, fmt.Errorf("rayleigh: %w", err)
	}
	return &RealTime{inner: inner, workers: cfg.Parallel}, nil
}

// realtimeCoreConfig resolves a public real-time configuration into the core
// one, threading the selected method's coloring construction (and, for the
// Sorooshyari–Daut backend, its unit-variance whitening assumption) into the
// Section 5 combination.
func realtimeCoreConfig(cfg RealTimeConfig) (core.RealTimeConfig, error) {
	k, err := toMatrix(cfg.Covariance)
	if err != nil {
		return core.RealTimeConfig{}, err
	}
	coloring, assumeUnit, err := backend.RealtimeOverride(cfg.Method, k)
	if err != nil {
		return core.RealTimeConfig{}, fmt.Errorf("rayleigh: %w", err)
	}
	specParams := fadingSpecParams(cfg.FadingParams)
	if err := chanspec.ValidateFading(cfg.Fading, specParams); err != nil {
		return core.RealTimeConfig{}, fmt.Errorf("rayleigh: %w", err)
	}
	var segments []core.DopplerSegment
	if chanspec.NormalizeFading(cfg.Fading) == chanspec.FadingNonstationaryDoppler {
		if cfg.NormalizedDoppler != 0 {
			return core.RealTimeConfig{}, fmt.Errorf(
				"rayleigh: fading %q carries per-segment Doppler; NormalizedDoppler must be zero, got %g: %w",
				cfg.Fading, cfg.NormalizedDoppler, ErrInvalidConfig)
		}
		segments = make([]core.DopplerSegment, len(cfg.FadingParams.Segments))
		for i, s := range cfg.FadingParams.Segments {
			segments[i] = core.DopplerSegment{Blocks: s.Blocks, NormalizedDoppler: s.NormalizedDoppler}
		}
	}
	transform, err := backend.Transform(cfg.Fading, specParams, k, cfg.Seed)
	if err != nil {
		return core.RealTimeConfig{}, fmt.Errorf("rayleigh: %w", err)
	}
	return core.RealTimeConfig{
		Covariance:         k,
		Filter:             doppler.FilterSpec{M: cfg.IDFTPoints, NormalizedDoppler: cfg.NormalizedDoppler},
		InputVariance:      cfg.InputVariance,
		Seed:               cfg.Seed,
		Coloring:           coloring,
		AssumeUnitVariance: assumeUnit,
		Transform:          transform,
		DopplerSegments:    segments,
	}, nil
}

// N returns the number of envelopes.
func (r *RealTime) N() int { return r.inner.N() }

// BlockLength returns the number of time samples per block.
func (r *RealTime) BlockLength() int { return r.inner.BlockLength() }

// SampleVariance returns the σ²_g used in the whitening step: the Doppler
// filter output variance of Eq. (19), or 1 under the Sorooshyari–Daut
// backend's unit-variance assumption.
func (r *RealTime) SampleVariance() float64 { return r.inner.SampleVariance() }

// Block generates the next block of time-correlated envelopes.
func (r *RealTime) Block() Block {
	b := r.inner.GenerateBlock()
	return Block{Gaussian: b.Gaussian, Envelopes: b.Envelopes}
}

// BlockInto generates the next block into b, reusing its storage when it
// already holds N rows of BlockLength samples (an empty or wrong-shaped block
// is [re]allocated in place). It continues the same random streams as Block
// and produces identical values; with a pre-shaped destination and a
// power-of-two IDFT length the call performs no steady-state heap allocation.
// This is the streaming API for feeding live channel simulators sample block
// by sample block.
func (r *RealTime) BlockInto(b *Block) error {
	if b == nil {
		return fmt.Errorf("rayleigh: nil destination block: %w", ErrInvalidConfig)
	}
	r.scratch.Gaussian, r.scratch.Envelopes = b.Gaussian, b.Envelopes
	if err := r.inner.GenerateBlockInto(&r.scratch); err != nil {
		return fmt.Errorf("rayleigh: %w", err)
	}
	b.Gaussian, b.Envelopes = r.scratch.Gaussian, r.scratch.Envelopes
	r.scratch.Gaussian, r.scratch.Envelopes = nil, nil
	return nil
}

// BlocksInto fills dst with len(dst) consecutive blocks, reusing the storage
// of every pre-shaped entry; nil entries are replaced by freshly allocated
// blocks, and duplicate non-nil pointers are rejected with ErrInvalidConfig
// (aliased entries would silently clobber each other). When RealTimeConfig.Parallel > 1 the blocks fan out across that many
// workers, each with private Doppler generators and GEMM panels, and the
// output is bit-identical for every worker count: every block draws from its
// own stream set, derived in block order from the seed before generation
// starts.
//
// The per-block streams are distinct from the streams behind Block/BlockInto:
// a batched run reproduces other batched runs, not a sequence of Block calls.
func (r *RealTime) BlocksInto(dst []*Block) error {
	if len(dst) == 0 {
		return fmt.Errorf("rayleigh: empty block destination: %w", ErrInvalidConfig)
	}
	if r.seen == nil {
		r.seen = make(map[*Block]int, len(dst))
	}
	clear(r.seen)
	for i, b := range dst {
		if b == nil {
			continue
		}
		if j, dup := r.seen[b]; dup {
			// A duplicate pointer would silently lose block j: both entries
			// alias one Block, so the later fill clobbers the earlier one.
			return fmt.Errorf("rayleigh: destination blocks %d and %d alias the same *Block: %w", j, i, ErrInvalidConfig)
		}
		r.seen[b] = i
	}
	if cap(r.blocks) < len(dst) {
		r.blocks = make([]core.Block, len(dst))
		r.views = make([]*core.Block, len(dst))
		for i := range r.blocks {
			r.views[i] = &r.blocks[i]
		}
	}
	blocks := r.blocks[:len(dst)]
	views := r.views[:len(dst)]
	for i, b := range dst {
		if b == nil {
			b = &Block{}
			dst[i] = b
		}
		blocks[i].Gaussian, blocks[i].Envelopes = b.Gaussian, b.Envelopes
	}
	if err := r.inner.GenerateBlocksInto(views, r.workers); err != nil {
		return fmt.Errorf("rayleigh: %w", err)
	}
	for i, b := range dst {
		b.Gaussian, b.Envelopes = blocks[i].Gaussian, blocks[i].Envelopes
		// Drop the scratch's reference so the generator does not pin the
		// caller's block storage beyond the call.
		blocks[i] = core.Block{}
	}
	return nil
}

// TheoreticalAutocorrelation returns the designed per-envelope normalized
// autocorrelation J0(2π·fm·lag). Under FadingNonstationaryDoppler it reports
// the first trajectory segment; use TheoreticalAutocorrelationAt for later
// blocks.
func (r *RealTime) TheoreticalAutocorrelation(lag int) float64 {
	return r.inner.TheoreticalAutocorrelation(lag)
}

// TheoreticalAutocorrelationAt returns the designed normalized
// autocorrelation J0(2π·fm·lag) of the trajectory segment covering the given
// block. Without FadingNonstationaryDoppler every block reports the single
// configured Doppler.
func (r *RealTime) TheoreticalAutocorrelationAt(block uint64, lag int) float64 {
	return r.inner.TheoreticalAutocorrelationAt(block, lag)
}

// Diagnostics reports the covariance conditioning applied at construction.
func (r *RealTime) Diagnostics() Diagnostics {
	return diagnosticsFromForced(r.inner.Diagnostics())
}

// EnvelopePowerToGaussianPower converts a desired Rayleigh envelope variance
// σr² to the power σg² of the complex Gaussian producing it (Eq. (11)).
func EnvelopePowerToGaussianPower(envelopeVariance float64) (float64, error) {
	v, err := core.EnvelopePowerToGaussianPower(envelopeVariance)
	if err != nil {
		return 0, fmt.Errorf("rayleigh: %w", err)
	}
	return v, nil
}

// GaussianPowerToEnvelopeVariance inverts EnvelopePowerToGaussianPower
// (Eq. (15)).
func GaussianPowerToEnvelopeVariance(gaussianPower float64) (float64, error) {
	v, err := core.GaussianPowerToEnvelopeVariance(gaussianPower)
	if err != nil {
		return 0, fmt.Errorf("rayleigh: %w", err)
	}
	return v, nil
}

// ExpectedEnvelopeMean returns E{r} = 0.8862·σg for a complex Gaussian power
// σg² (Eq. (14)).
func ExpectedEnvelopeMean(gaussianPower float64) (float64, error) {
	v, err := core.ExpectedEnvelopeMean(gaussianPower)
	if err != nil {
		return 0, fmt.Errorf("rayleigh: %w", err)
	}
	return v, nil
}

// toMatrix validates and converts a row-major covariance matrix.
func toMatrix(rows [][]complex128) (*cmplxmat.Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("rayleigh: empty covariance matrix: %w", ErrInvalidConfig)
	}
	for i, r := range rows {
		if len(r) != len(rows) {
			return nil, fmt.Errorf("rayleigh: covariance row %d has %d entries, want %d: %w", i, len(r), len(rows), ErrInvalidConfig)
		}
	}
	m, err := cmplxmat.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("rayleigh: %w", err)
	}
	return m, nil
}

// diagnosticsFromForced converts the internal forcing record.
func diagnosticsFromForced(f *core.ForcedPSD) Diagnostics {
	vals := make([]float64, len(f.Eigenvalues))
	copy(vals, f.Eigenvalues)
	return Diagnostics{
		Eigenvalues:        vals,
		ClampedEigenvalues: f.NumClamped,
		ApproximationError: f.FrobeniusError,
	}
}
