// Package rayleigh generates arbitrary numbers of correlated Rayleigh fading
// envelopes with arbitrary (equal or unequal) powers and any desired
// covariance matrix of the underlying complex Gaussian processes, following
//
//	L. C. Tran, T. A. Wysocki, J. Seberry, A. Mertins,
//	"A Generalized Algorithm for the Generation of Correlated Rayleigh
//	Fading Envelopes in Radio Channels", IPDPS 2005.
//
// Two generation modes are provided:
//
//   - Snapshot mode (Generator): independent draws of N correlated complex
//     Gaussian samples whose moduli are the Rayleigh envelopes. The desired
//     covariance matrix does not need to be positive definite — negative
//     eigenvalues are clamped to zero (the paper's positive semi-definiteness
//     forcing) and the coloring matrix is obtained by eigendecomposition, so
//     rank-deficient and indefinite targets are handled without Cholesky.
//
//   - Real-time mode (RealTime): every envelope additionally carries the
//     Jakes autocorrelation J0(2π·fm·d) imposed by Young–Beaulieu IDFT
//     Doppler generators, and the coloring step accounts for the Doppler
//     filter's variance gain (Eq. (19) of the paper) so the cross-envelope
//     covariance still matches the target.
//
// Desired covariance matrices can be supplied directly, or built from the
// physical correlation models of the paper: SpectralCovariance (time delay
// and frequency separation, as between OFDM subcarriers) and
// SpatialCovariance (antenna spacing in a transmit array, as in MIMO).
package rayleigh
