// Package rayleigh generates arbitrary numbers of correlated Rayleigh fading
// envelopes with arbitrary (equal or unequal) powers and any desired
// covariance matrix of the underlying complex Gaussian processes, following
//
//	L. C. Tran, T. A. Wysocki, J. Seberry, A. Mertins,
//	"A Generalized Algorithm for the Generation of Correlated Rayleigh
//	Fading Envelopes in Radio Channels", IPDPS 2005.
//
// Two generation modes are provided:
//
//   - Snapshot mode (Generator): independent draws of N correlated complex
//     Gaussian samples whose moduli are the Rayleigh envelopes. The desired
//     covariance matrix does not need to be positive definite — negative
//     eigenvalues are clamped to zero (the paper's positive semi-definiteness
//     forcing) and the coloring matrix is obtained by eigendecomposition, so
//     rank-deficient and indefinite targets are handled without Cholesky.
//
//   - Real-time mode (RealTime): every envelope additionally carries the
//     Jakes autocorrelation J0(2π·fm·d) imposed by Young–Beaulieu IDFT
//     Doppler generators, and the coloring step accounts for the Doppler
//     filter's variance gain (Eq. (19) of the paper) so the cross-envelope
//     covariance still matches the target.
//
// Desired covariance matrices can be supplied directly, or built from the
// physical correlation models of the paper: SpectralCovariance (time delay
// and frequency separation, as between OFDM subcarriers) and
// SpatialCovariance (antenna spacing in a transmit array, as in MIMO).
//
// # Generation methods
//
// The paper's generalized algorithm is the default backend, and the five
// conventional methods its introduction reviews — Salz–Winters, Ertel–Reed,
// Beaulieu–Merani, Natarajan et al., Sorooshyari–Daut — are selectable
// through Config.Method / RealTimeConfig.Method (or NewWithMethod), with
// their documented constraints and defects intact: a method that cannot
// express a configuration fails construction with ErrMethodUnsupported or
// ErrMethodSetup, and methods that bias what they accept (real-forced
// covariances, ε-clamping, unit-variance whitening) do so here too, so the
// paper's comparative claims are reproducible experiments. Methods returns
// the catalog; each backend's constraints, failure classes and real-time
// semantics are documented in docs/methods.md, and the scenario harness's
// "comparison" assertion runs one covariance target across several methods
// side by side (see the scenarios/compare-*.json specs).
//
// # Channel models
//
// Orthogonal to the method axis, a fading model (Config.Fading /
// RealTimeConfig.Fading plus FadingParams) reshapes the correlated Rayleigh
// field any backend produces: FadingRician adds a deterministic
// line-of-sight component after coloring (K-factor, mean power preserved),
// FadingNakagamiM applies the exact probability-integral transform onto a
// Nakagami-m envelope, FadingSuzuki multiplies by correlated lognormal
// shadowing with its own coherence length, and FadingNonstationaryDoppler
// drives real-time blocks through a piecewise Doppler-velocity trajectory
// (each segment carries its own Jakes autocorrelation; snapshot modes
// reject it, having no time axis). Every model preserves the determinism
// contract — block k remains a pure function of (spec, seed, k), byte-
// identical across worker counts and resume points. Models returns the
// catalog; the math, spec schema and statistical gates are documented in
// docs/models.md.
//
// # Performance
//
// The generation hot path is a zero-allocation batched engine. Both modes
// offer streaming "Into" APIs that write into caller-supplied storage:
//
//   - Generator.SnapshotsInto fills a pre-shaped []Snapshot; the batch is cut
//     into chunks, each chunk's raw samples are drawn into a flat N×chunk
//     panel, and the whole panel is colored with one cache-blocked
//     matrix-matrix product. With reused destinations the steady-state heap
//     traffic is amortized O(1) per snapshot.
//
//   - RealTime.BlockInto fills a reusable Block; the N Doppler processes are
//     drawn into the rows of an N×M panel, the IDFTs run through per-length
//     transform plans with precomputed twiddle factors and bit-reversal
//     permutations, and the whole panel is colored with a single
//     matrix-matrix product. With a pre-shaped Block and a power-of-two IDFT
//     length the call performs no heap allocation at all.
//
// Setting Config.Parallel / RealTimeConfig.Parallel fans SnapshotsInto
// chunks and BlocksInto blocks across a worker pool. Every unit of work
// draws from its own random stream, derived deterministically (and in work
// order) from the seed before generation starts, so seeded output is
// bit-identical for every worker count — parallelism changes wall-clock
// time, never values. The batched streams are distinct from the streams
// behind Snapshot/Block: a batched run reproduces other batched runs, not an
// element-wise sequence of single-draw calls.
//
// Measured throughput and allocation figures live in BENCH_core.json at the
// repository root (regenerate with "go run ./cmd/benchreport"); the
// methodology and fixed seeds are documented in docs/benchmarking.md.
//
// # Concurrency
//
// Generator and RealTime are not safe for concurrent use: their methods
// share internal scratch, so drive each instance from one goroutine at a
// time. (The Parallel worker fan-out happens inside a single SnapshotsInto /
// BlocksInto call and needs no caller-side coordination.) The concurrent
// entry point is Stream: it is immutable after construction and hands out
// independent Cursors, each owning its generation workspace, so any number
// of goroutines can serve blocks of the same deterministic sequence — the
// basis of the fadingd streaming service (see docs/service.md).
//
// # Scenarios
//
// Statistical correctness is guarded by a declarative scenario harness:
// JSON specs in scenarios/ name a correlation model, a generation mode, a
// fixed seed and a list of assertions with explicit tolerances, and the
// engine in internal/scenario evaluates every assertion as a pass/fail
// release gate ("go run ./cmd/scenariorun -all"; CI runs the full corpus on
// every pull request). The spec schema and assertion catalog are documented
// in docs/scenarios.md.
//
// # Service
//
// cmd/fadingd serves the engine over HTTP as a long-running streaming
// service: sessions are created from the same correlation-model and method
// vocabulary the scenario files use, and their block streams are
// deterministic and resumable (?from=k is byte-identical to the tail of a
// from-0 stream, at any server worker count). The session table is sharded
// for concurrent churn, and sessions with equal specs share one immutable
// generation artifact through a content-addressed setup cache, so only the
// first create of a spec pays the O(N³) setup. Endpoints, the spec schema,
// the binary frame layout, the sharding/cache design and capacity tuning are
// documented in docs/service.md; a load generator (with a session-churn
// mode) lives in cmd/fadingd/loadtest.
//
// The service scales horizontally without shared state: every session
// create returns a signed, self-describing token (internal/token) carrying
// the full canonical spec, seed and blocks budget behind an HMAC, so any
// replica holding the verifying key can rebuild the exact stream from the
// token alone — the token is the source of truth and the session table is a
// cache. "cmd/fadingd deploy" emits a docker-compose recipe for such a
// fleet (committed under deploy/), the loadtest's -replicas mode and the
// SLO lab's scaling sweep measure horizontal-scaling efficiency, and the
// corpus replayer's -token mode proves byte-identical token-only resume for
// every generated spec. The token format, key-rotation procedure and
// statelessness contract are documented in docs/cluster.md.
//
// The service's behavior under faults — slow consumers, connection churn,
// setup-cache miss storms, session-table saturation, connections killed
// mid-stream — is held to explicit service-level objectives by the SLO lab:
// scenario specs in scenarios/slo drive internal/slolab's fault-injecting
// load harness ("go run ./cmd/slorun -all"), every objective evaluates as an
// independent release gate, and cmd/benchreport -slo-compare gates fresh
// runs against the committed baseline BENCH_slo.json. The scenario schema,
// fault and gate catalogs, determinism contract and the overload/retry
// semantics they enforce are documented in docs/slo.md and docs/service.md.
//
// The spec vocabulary itself is swept by the corpus subsystem: cmd/corpusgen
// expands committed plans (plans/) into hundreds of seeded scenario specs
// plus targeted invalid ones, runs them through the scenario engine, and
// replays them byte-for-byte against the streaming service ("go run
// ./cmd/corpusgen replay -plan plans/corpus-full.json"); native fuzz targets
// seeded from the committed smoke corpus (scenarios/corpus-smoke) gate
// canonicalization idempotence and strict decoding. docs/corpus.md documents
// the plan schema, the constraint matrix and the replay contract.
//
// The invariants behind all of the above — no ambient nondeterminism in
// generation packages, canonical hashes covering every spec field,
// lock-discipline on the sharded session table, allocation-free hot paths,
// the typed error contract — are enforced at compile time by the fadinglint
// analyzer suite ("go run ./cmd/fadinglint ./...", or via
// go vet -vettool); docs/linting.md catalogs the analyzers and their
// directive syntax.
//
// A repository-level overview (architecture map, quickstart, methods table)
// lives in README.md.
package rayleigh
