package rayleigh

import (
	"errors"
	"math"
	"testing"
)

// fadingTestCovariance is a small unequal-power Hermitian target exercising
// every zoo model's per-envelope Ω handling.
func fadingTestCovariance() [][]complex128 {
	return [][]complex128{
		{2, 0.5 + 0.3i},
		{0.5 - 0.3i, 1},
	}
}

func TestModelsCatalog(t *testing.T) {
	models := Models()
	if len(models) != 5 {
		t.Fatalf("Models() has %d entries, want 5", len(models))
	}
	if models[0].Name != FadingRayleigh {
		t.Fatalf("catalog leads with %q, want the Rayleigh default", models[0].Name)
	}
	want := map[string]bool{
		FadingRayleigh: true, FadingRician: true, FadingNakagamiM: true,
		FadingSuzuki: true, FadingNonstationaryDoppler: true,
	}
	for _, m := range models {
		if !want[m.Name] {
			t.Errorf("unexpected catalog entry %q", m.Name)
		}
		if m.Title == "" || m.Envelope == "" || m.Constraints == "" {
			t.Errorf("model %q catalog entry incomplete: %+v", m.Name, m)
		}
	}
}

func TestFadingConfigValidation(t *testing.T) {
	cov := fadingTestCovariance()
	bad := []Config{
		{Covariance: cov, Fading: "warp"},
		{Covariance: cov, Fading: FadingRician}, // missing params
		{Covariance: cov, Fading: FadingRician, FadingParams: &FadingParams{KFactor: -1}},
		{Covariance: cov, Fading: FadingNakagamiM, FadingParams: &FadingParams{M: 0.2}},
		{Covariance: cov, Fading: FadingSuzuki, FadingParams: &FadingParams{}},
		// Nonstationary Doppler has no snapshot semantics.
		{Covariance: cov, Fading: FadingNonstationaryDoppler,
			FadingParams: &FadingParams{Segments: []DopplerSegment{{Blocks: 2, NormalizedDoppler: 0.1}}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d (fading %q) accepted", i, cfg.Fading)
		}
	}
	// A nonstationary real-time config must leave NormalizedDoppler to the
	// trajectory.
	_, err := NewRealTime(RealTimeConfig{
		Covariance: cov, IDFTPoints: 256, NormalizedDoppler: 0.05,
		Fading:       FadingNonstationaryDoppler,
		FadingParams: &FadingParams{Segments: []DopplerSegment{{Blocks: 2, NormalizedDoppler: 0.1}}},
	})
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("conflicting NormalizedDoppler: err = %v, want ErrInvalidConfig", err)
	}
}

// TestFadingModelsGolden pins a fixed-seed envelope snapshot per model: the
// models must stay byte-stable across refactors, and distinct models must
// produce distinct values from identical seeds.
func TestFadingModelsGolden(t *testing.T) {
	cases := []struct {
		fading string
		params *FadingParams
	}{
		{FadingRayleigh, nil},
		{FadingRician, &FadingParams{KFactor: 5, LOSPhaseRad: 0.3}},
		{FadingNakagamiM, &FadingParams{M: 3}},
		{FadingSuzuki, &FadingParams{ShadowSigmaDB: 4, ShadowCoherence: 64}},
	}
	outputs := make(map[string][]float64, len(cases))
	for _, tc := range cases {
		g, err := New(Config{
			Covariance:   fadingTestCovariance(),
			Seed:         42,
			Fading:       tc.fading,
			FadingParams: tc.params,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", tc.fading, err)
		}
		var envs []float64
		for i := 0; i < 4; i++ {
			s := g.Snapshot()
			envs = append(envs, s.Envelopes...)
			for j, z := range s.Gaussian {
				if got := math.Hypot(real(z), imag(z)); math.Abs(got-s.Envelopes[j]) > 1e-12 {
					t.Fatalf("%s: envelope %d = %g, want |z| = %g", tc.fading, j, s.Envelopes[j], got)
				}
			}
		}
		outputs[tc.fading] = envs

		// The same configuration reproduces itself byte for byte.
		g2, err := New(Config{
			Covariance:   fadingTestCovariance(),
			Seed:         42,
			Fading:       tc.fading,
			FadingParams: tc.params,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			s := g2.Snapshot()
			for j, e := range s.Envelopes {
				if e != envs[i*2+j] {
					t.Fatalf("%s: rerun envelope (%d,%d) = %g, want %g", tc.fading, i, j, e, envs[i*2+j])
				}
			}
		}
	}
	// Distinct models diverge from the shared Gaussian stream.
	for i := range cases {
		for j := i + 1; j < len(cases); j++ {
			a, b := outputs[cases[i].fading], outputs[cases[j].fading]
			same := 0
			for k := range a {
				if a[k] == b[k] {
					same++
				}
			}
			if same == len(a) {
				t.Errorf("models %s and %s produce identical envelopes", cases[i].fading, cases[j].fading)
			}
		}
	}
}

// TestFadingBatchedWorkerInvariance checks the batched snapshot path stays
// bit-identical across worker counts with a sample-indexed model (Suzuki) in
// the loop — the model whose shadowing depends on the global draw index.
func TestFadingBatchedWorkerInvariance(t *testing.T) {
	const count = 64
	mk := func(parallel int) *Generator {
		g, err := New(Config{
			Covariance:   fadingTestCovariance(),
			Seed:         7,
			Parallel:     parallel,
			Fading:       FadingSuzuki,
			FadingParams: &FadingParams{ShadowSigmaDB: 6, ShadowCoherence: 16},
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	var runs [][]Snapshot
	for _, workers := range []int{1, 4} {
		g := mk(workers)
		dst := make([]Snapshot, count)
		if err := g.SnapshotsInto(dst); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, dst)
	}
	for i := range runs[0] {
		for j := range runs[0][i].Envelopes {
			if runs[0][i].Envelopes[j] != runs[1][i].Envelopes[j] {
				t.Fatalf("snapshot %d envelope %d differs across worker counts", i, j)
			}
		}
	}
}

// TestNonstationaryStreamResume is the resume contract for the trajectory
// model at the public surface: seeking a fresh cursor straight to block k —
// across the segment seam — reproduces the sequentially consumed block k byte
// for byte, and the per-segment theoretical autocorrelation switches with the
// trajectory.
func TestNonstationaryStreamResume(t *testing.T) {
	cfg := RealTimeConfig{
		Covariance: fadingTestCovariance(),
		IDFTPoints: 256,
		Seed:       99,
		Fading:     FadingNonstationaryDoppler,
		FadingParams: &FadingParams{Segments: []DopplerSegment{
			{Blocks: 2, NormalizedDoppler: 0.02},
			{Blocks: 2, NormalizedDoppler: 0.12},
		}},
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	c, err := s.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	const count = 6
	seq := make([]*Block, count)
	for i := range seq {
		seq[i] = &Block{}
		if err := c.Next(seq[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh stream's cursor seeks directly to every position.
	s2, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	b := &Block{}
	for _, idx := range []uint64{5, 1, 3, 0, 2, 4} {
		if err := c2.BlockAt(idx, b); err != nil {
			t.Fatal(err)
		}
		for j := range b.Gaussian {
			for l := range b.Gaussian[j] {
				if b.Gaussian[j][l] != seq[idx].Gaussian[j][l] || b.Envelopes[j][l] != seq[idx].Envelopes[j][l] {
					t.Fatalf("block %d sample (%d,%d) differs on resume", idx, j, l)
				}
			}
		}
	}
	// The designed autocorrelation follows the trajectory segments.
	if a, b := s.TheoreticalAutocorrelationAt(0, 7), s.TheoreticalAutocorrelationAt(3, 7); a == b {
		t.Errorf("autocorrelation identical across segments: %g", a)
	}
	if a, b := s.TheoreticalAutocorrelationAt(3, 7), s.TheoreticalAutocorrelationAt(5, 7); a != b {
		t.Errorf("last segment does not persist: %g vs %g", a, b)
	}
}
