package rayleigh

import (
	"math"
	"math/cmplx"
	"testing"
)

// paperSpectralCovariance returns the public-API covariance for the paper's
// Section 6 spectral scenario (Eq. (22)).
func paperSpectralCovariance(t *testing.T) [][]complex128 {
	t.Helper()
	cov, err := SpectralCovariance(SpectralConfig{
		Frequencies:    []float64{400e3, 200e3, 0},
		Delays:         [][]float64{{0, 1e-3, 4e-3}, {1e-3, 0, 3e-3}, {4e-3, 3e-3, 0}},
		MaxDopplerHz:   50,
		RMSDelaySpread: 1e-6,
		Power:          1,
	})
	if err != nil {
		t.Fatalf("SpectralCovariance: %v", err)
	}
	return cov
}

func TestSpectralCovarianceMatchesEq22(t *testing.T) {
	cov := paperSpectralCovariance(t)
	want := [][]complex128{
		{1, 0.3782 + 0.4753i, 0.0878 + 0.2207i},
		{0.3782 - 0.4753i, 1, 0.3063 + 0.3849i},
		{0.0878 - 0.2207i, 0.3063 - 0.3849i, 1},
	}
	for i := range want {
		for j := range want[i] {
			if cmplx.Abs(cov[i][j]-want[i][j]) > 6e-4 {
				t.Errorf("K(%d,%d) = %v, want %v", i, j, cov[i][j], want[i][j])
			}
		}
	}
}

func TestSpatialCovarianceMatchesEq23(t *testing.T) {
	cov, err := SpatialCovariance(SpatialConfig{
		Antennas:           3,
		SpacingWavelengths: 1,
		AngularSpreadRad:   math.Pi / 18,
		MeanAngleRad:       0,
	})
	if err != nil {
		t.Fatalf("SpatialCovariance: %v", err)
	}
	want := [][]complex128{
		{1, 0.8123, 0.3730},
		{0.8123, 1, 0.8123},
		{0.3730, 0.8123, 1},
	}
	for i := range want {
		for j := range want[i] {
			if cmplx.Abs(cov[i][j]-want[i][j]) > 6e-4 {
				t.Errorf("K(%d,%d) = %v, want %v", i, j, cov[i][j], want[i][j])
			}
		}
	}
}

func TestModelConfigValidation(t *testing.T) {
	if _, err := SpectralCovariance(SpectralConfig{}); err == nil {
		t.Errorf("empty spectral config did not error")
	}
	if _, err := SpectralCovariance(SpectralConfig{
		Frequencies:  []float64{0, 1e3},
		MaxDopplerHz: -1,
	}); err == nil {
		t.Errorf("negative Doppler did not error")
	}
	if _, err := SpatialCovariance(SpatialConfig{}); err == nil {
		t.Errorf("empty spatial config did not error")
	}
	if _, err := SpatialCovariance(SpatialConfig{Antennas: 2, SpacingWavelengths: 0.5}); err == nil {
		t.Errorf("zero angular spread did not error")
	}
}

func TestSpectralCovarianceDefaultDelaysAndPower(t *testing.T) {
	cov, err := SpectralCovariance(SpectralConfig{
		Frequencies:    []float64{0, 200e3},
		MaxDopplerHz:   50,
		RMSDelaySpread: 1e-6,
	})
	if err != nil {
		t.Fatalf("SpectralCovariance: %v", err)
	}
	if real(cov[0][0]) != 1 || real(cov[1][1]) != 1 {
		t.Errorf("default power should be 1, got diagonal %v %v", cov[0][0], cov[1][1])
	}
}

func TestNewGeneratorAndSnapshot(t *testing.T) {
	gen, err := New(Config{Covariance: paperSpectralCovariance(t), Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if gen.N() != 3 {
		t.Errorf("N = %d, want 3", gen.N())
	}
	s := gen.Snapshot()
	if len(s.Gaussian) != 3 || len(s.Envelopes) != 3 {
		t.Fatalf("snapshot sizes %d/%d", len(s.Gaussian), len(s.Envelopes))
	}
	for i := range s.Envelopes {
		if math.Abs(s.Envelopes[i]-cmplx.Abs(s.Gaussian[i])) > 1e-14 {
			t.Errorf("envelope %d is not |z|", i)
		}
	}
	batch, err := gen.Snapshots(10)
	if err != nil || len(batch) != 10 {
		t.Errorf("Snapshots = %d, %v", len(batch), err)
	}
	if _, err := gen.Snapshots(0); err == nil {
		t.Errorf("Snapshots(0) did not error")
	}
	d := gen.Diagnostics()
	if d.ClampedEigenvalues != 0 || d.ApproximationError > 1e-12 || len(d.Eigenvalues) != 3 {
		t.Errorf("unexpected diagnostics for a PSD matrix: %+v", d)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Errorf("empty covariance did not error")
	}
	if _, err := New(Config{Covariance: [][]complex128{{1, 2}}}); err == nil {
		t.Errorf("non-square covariance did not error")
	}
	if _, err := New(Config{Covariance: [][]complex128{{1, 2}, {3, 4}}}); err == nil {
		t.Errorf("non-Hermitian covariance did not error")
	}
}

func TestNewFromEnvelopePowers(t *testing.T) {
	rho := [][]complex128{
		{1, 0.5},
		{0.5, 1},
	}
	gen, err := NewFromEnvelopePowers(rho, []float64{1, 2}, 3)
	if err != nil {
		t.Fatalf("NewFromEnvelopePowers: %v", err)
	}
	// Check Eq. (15): average envelope variance over many snapshots matches
	// the requested σr².
	const draws = 150000
	sum := make([]float64, 2)
	sumSq := make([]float64, 2)
	for i := 0; i < draws; i++ {
		s := gen.Snapshot()
		for j, r := range s.Envelopes {
			sum[j] += r
			sumSq[j] += r * r
		}
	}
	for j, want := range []float64{1, 2} {
		mean := sum[j] / draws
		variance := sumSq[j]/draws - mean*mean
		if math.Abs(variance-want) > 0.05*want {
			t.Errorf("envelope %d variance = %g, want %g", j, variance, want)
		}
	}

	if _, err := NewFromEnvelopePowers(nil, []float64{1}, 0); err == nil {
		t.Errorf("nil correlation did not error")
	}
	if _, err := NewFromEnvelopePowers(rho, []float64{1}, 0); err == nil {
		t.Errorf("size mismatch did not error")
	}
}

func TestGeneratorHandlesIndefiniteCovariance(t *testing.T) {
	indefinite := [][]complex128{
		{1, 0.9, -0.9},
		{0.9, 1, 0.9},
		{-0.9, 0.9, 1},
	}
	gen, err := New(Config{Covariance: indefinite, Seed: 5})
	if err != nil {
		t.Fatalf("New(indefinite): %v", err)
	}
	d := gen.Diagnostics()
	if d.ClampedEigenvalues == 0 {
		t.Errorf("expected eigenvalue clamping for an indefinite target")
	}
	if d.ApproximationError <= 0 {
		t.Errorf("expected positive approximation error, got %g", d.ApproximationError)
	}
	s := gen.Snapshot()
	if len(s.Envelopes) != 3 {
		t.Errorf("snapshot has %d envelopes", len(s.Envelopes))
	}
}

func TestPowerHelpers(t *testing.T) {
	sg2, err := EnvelopePowerToGaussianPower(1)
	if err != nil {
		t.Fatalf("EnvelopePowerToGaussianPower: %v", err)
	}
	back, err := GaussianPowerToEnvelopeVariance(sg2)
	if err != nil || math.Abs(back-1) > 1e-12 {
		t.Errorf("round trip = %g, %v", back, err)
	}
	mean, err := ExpectedEnvelopeMean(1)
	if err != nil || math.Abs(mean-0.8862269254527580) > 1e-12 {
		t.Errorf("ExpectedEnvelopeMean = %g, %v", mean, err)
	}
	if _, err := EnvelopePowerToGaussianPower(0); err == nil {
		t.Errorf("zero envelope power did not error")
	}
	if _, err := GaussianPowerToEnvelopeVariance(-1); err == nil {
		t.Errorf("negative Gaussian power did not error")
	}
	if _, err := ExpectedEnvelopeMean(0); err == nil {
		t.Errorf("zero Gaussian power did not error")
	}
}

func TestRealTimePublicAPI(t *testing.T) {
	rt, err := NewRealTime(RealTimeConfig{
		Covariance:        paperSpectralCovariance(t),
		IDFTPoints:        512,
		NormalizedDoppler: 0.05,
		Seed:              7,
	})
	if err != nil {
		t.Fatalf("NewRealTime: %v", err)
	}
	if rt.N() != 3 || rt.BlockLength() != 512 {
		t.Errorf("N=%d, BlockLength=%d", rt.N(), rt.BlockLength())
	}
	b := rt.Block()
	if len(b.Gaussian) != 3 || len(b.Envelopes) != 3 || len(b.Envelopes[0]) != 512 {
		t.Fatalf("block shape wrong")
	}
	if math.Abs(rt.TheoreticalAutocorrelation(0)-1) > 1e-12 {
		t.Errorf("TheoreticalAutocorrelation(0) != 1")
	}
	if rt.Diagnostics().ClampedEigenvalues != 0 {
		t.Errorf("unexpected clamping for Eq. (22)")
	}

	if _, err := NewRealTime(RealTimeConfig{
		Covariance:        paperSpectralCovariance(t),
		IDFTPoints:        8,
		NormalizedDoppler: 0.01,
	}); err == nil {
		t.Errorf("invalid Doppler configuration did not error")
	}
	if _, err := NewRealTime(RealTimeConfig{}); err == nil {
		t.Errorf("empty real-time config did not error")
	}
}

func TestGeneratorDeterministicAcrossConstruction(t *testing.T) {
	cov := paperSpectralCovariance(t)
	g1, err := New(Config{Covariance: cov, Seed: 11})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g2, err := New(Config{Covariance: cov, Seed: 11})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 5; i++ {
		a, b := g1.Snapshot(), g2.Snapshot()
		for j := range a.Gaussian {
			if a.Gaussian[j] != b.Gaussian[j] {
				t.Fatalf("same seed, different snapshots")
			}
		}
	}
}
